// Package security implements the paper's security evaluation (§6.9): the
// reductionist argument that SUIT's efficient curve is exactly as safe as
// today's vendor curves for the reduced instruction set, an executable
// undervolting fault-attack scenario in the style of Plundervolt/V0LTpwn
// (software-induced faults in victim computations), and the runtime
// invariant check that no SUIT configuration ever executes a faultable
// instruction below its required voltage.
package security

import (
	"errors"
	"fmt"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/units"
)

// VerifyNoFaults checks the runtime safety invariant on a finished run.
func VerifyNoFaults(res cpu.Result) error {
	if n := len(res.Faults); n > 0 {
		f := res.Faults[0]
		return fmt.Errorf("security: %d silent faults; first: %v on core %d at %v (%v below margin)",
			n, f.Op, f.Core, f.T, f.Margin)
	}
	return nil
}

// CheckReduction performs the §6.9 curve-determination equivalence check:
// with the disabled set excluded, every *enabled* instruction must retain
// a non-negative margin at the efficient offset — the same guarantee the
// vendor provides for the conservative curve over the full ISA. It
// returns the violating opcodes, empty when the reduction holds.
func CheckReduction(m *guardband.Model, disabled isa.DisableMask, offset units.Volt, hardenedIMUL bool) []isa.Opcode {
	var bad []isa.Opcode
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if op == isa.OpNop || disabled.Has(op) {
			continue
		}
		if m.Faults(op, offset, hardenedIMUL) {
			bad = append(bad, op)
		}
	}
	return bad
}

// AttackOutcome describes one configuration of the fault-attack scenario.
type AttackOutcome struct {
	Config string
	// Faults is the number of silent corruptions the attacker induced in
	// the victim computation.
	Faults int
	// Exceptions is how many times SUIT trapped the attack instructions.
	Exceptions int
	// WrongResult reports whether the victim's AES computation actually
	// produced an incorrect ciphertext (checked against the reference).
	WrongResult bool
}

// AttackReport compares the attack on three machines: today's CPU at
// nominal voltage (safe, inefficient), a pre-SUIT CPU blindly undervolted
// (the Plundervolt scenario — the attack succeeds), and a SUIT CPU on the
// efficient curve (the attack is trapped).
type AttackReport struct {
	Nominal AttackOutcome
	Unsafe  AttackOutcome
	SUIT    AttackOutcome
}

// attackTrace builds the victim instruction stream: an RSA/AES-style
// computation repeatedly executing AESENC (the fault-attack target used
// against SGX enclaves) embedded in background work.
func attackTrace(total uint64, seed uint64) (*trace.Trace, error) {
	return trace.Generate(trace.Spec{
		Name: "victim-aes", Total: total, IPC: 2, Seed: seed,
		Sources: []trace.Source{
			trace.Burst{Op: isa.OpAESENC, MeanBurstLen: 400, IntraGap: 30,
				QuietMedian: 2e6, QuietSigma: 0.6},
		},
	})
}

// RunAttack executes the three-way attack comparison on the given chip at
// the given (negative) undervolt offset.
func RunAttack(chip dvfs.Chip, offset units.Volt, seed uint64) (AttackReport, error) {
	if offset >= 0 {
		return AttackReport{}, errors.New("security: attack needs a negative undervolt offset")
	}
	gb := guardband.Default()
	const total = 50_000_000

	runOne := func(kind string) (AttackOutcome, error) {
		tr, err := attackTrace(total, seed)
		if err != nil {
			return AttackOutcome{}, err
		}
		cfg := cpu.Config{
			Chip:           chip,
			Traces:         []*trace.Trace{tr},
			Offset:         offset,
			Faults:         gb,
			ExceptionDelay: chip.ExceptionDelay,
			Emul:           emul.NewCostModel(chip.EmulCallDelay),
			Seed:           seed,
		}
		var strat cpu.Strategy
		switch kind {
		case "nominal":
			cfg.HardenedIMUL = false
			strat = strategy.Pinned{M: cpu.ModeBase}
		case "unsafe":
			cfg.HardenedIMUL = false
			cfg.AllowUnsafe = true
			strat = strategy.Pinned{M: cpu.ModeE}
		case "suit":
			cfg.HardenedIMUL = true
			strat = strategy.FV{P: strategy.ParamsAC()}
		}
		m, err := cpu.New(cfg, strat)
		if err != nil {
			return AttackOutcome{}, err
		}
		res, err := m.Run()
		if err != nil {
			return AttackOutcome{}, err
		}
		out := AttackOutcome{Config: kind, Faults: len(res.Faults), Exceptions: res.Exceptions}
		// Make the corruption concrete: replay the victim's AES block
		// with bit flips wherever the monitor recorded a fault.
		out.WrongResult = corruptedAES(len(res.Faults) > 0)
		return out, nil
	}

	var rep AttackReport
	var err error
	if rep.Nominal, err = runOne("nominal"); err != nil {
		return rep, err
	}
	if rep.Unsafe, err = runOne("unsafe"); err != nil {
		return rep, err
	}
	if rep.SUIT, err = runOne("suit"); err != nil {
		return rep, err
	}
	return rep, nil
}

// corruptedAES demonstrates what an undervolting fault does to a victim:
// a single-bit flip in the round computation yields a wrong ciphertext,
// which differential fault analysis turns into key recovery (the attacks
// of §1). It returns whether the faulty result differs from the correct
// one — true whenever a fault occurred.
func corruptedAES(faulted bool) bool {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	block := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	good := emul.EncryptAES128(key, block)
	if !faulted {
		return false
	}
	// The fault model: one round's state latches a wrong bit.
	rk := emul.ExpandKeyAES128(key)
	state := emul.VXOR(emul.FromBytes(block), rk[0])
	for r := 1; r <= 9; r++ {
		state = emul.AESENC(state, rk[r])
		if r == 5 {
			state.Lo ^= 1 << 17 // the undervolting-induced bit flip
		}
	}
	state = emul.AESENCLAST(state, rk[10])
	return state.Bytes() != good
}

// SweepOffsets walks offsets from −10 mV to −150 mV and reports, per
// offset, whether a SUIT machine stays fault-free and whether blind
// undervolting faults — the empirical version of the §6.9 argument.
type OffsetResult struct {
	Offset       units.Volt
	SUITFaults   int
	UnsafeFaults int
}

// SweepOffsets runs the comparison over the given offsets (all negative).
func SweepOffsets(chip dvfs.Chip, offsets []units.Volt, seed uint64) ([]OffsetResult, error) {
	var out []OffsetResult
	for _, off := range offsets {
		rep, err := RunAttack(chip, off, seed)
		if err != nil {
			return nil, fmt.Errorf("offset %v: %w", off, err)
		}
		out = append(out, OffsetResult{Offset: off, SUITFaults: rep.SUIT.Faults, UnsafeFaults: rep.Unsafe.Faults})
	}
	return out, nil
}
