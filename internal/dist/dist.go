// Package dist shards sweep execution across processes and hosts: the
// suitd daemon's dispatcher hands fingerprint-addressed work units to
// pull-based workers (cmd/suitworker) over HTTP, and digest-verified
// results flow back into the engine's content-addressed caches.
//
// Robustness is the design, not an afterthought. Every unit is leased,
// never given away: a worker that crashes, partitions or stalls simply
// stops heartbeating and the lease expires, after which the unit is
// reassigned deterministically. Delivery is at-least-once — and that is
// safe, because results are content-addressed and byte-identical by the
// PR 1 fingerprint contract: a duplicate delivery verifies against the
// recorded digest and dedups; two *different* results for one
// fingerprint is a conflict that is counted and rejected, never stored.
// Workers that keep failing leases are quarantined; a dispatcher whose
// remote tier keeps failing trips a circuit breaker; and in both cases
// execution degrades gracefully to the local engine, which is always
// capable of computing the identical bytes.
//
// The wire format carries registry names (chip letter, workload names)
// plus raw parameter values rather than model structs, and the worker
// re-derives the scenario fingerprint from what it reconstructed: any
// codec drift, version skew or corruption surfaces as a fingerprint
// mismatch and the unit is refused rather than mis-simulated.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"suit/internal/core"
	"suit/internal/strategy"
	"suit/internal/units"
	"suit/internal/workload"
)

// WorkUnit is one fingerprint-addressed scenario offered to workers.
// Fingerprint is the engine's cache key (the content address of the
// work); Seed is the engine-derived seed the run function receives, so
// a remote execution reproduces exactly what a local attempt would.
type WorkUnit struct {
	Fingerprint string       `json:"fingerprint"`
	Seed        uint64       `json:"seed"`
	Scenario    ScenarioWire `json:"scenario"`
}

// ScenarioWire is a core.Scenario flattened to registry names and raw
// values. Chip models and workload definitions never travel — both
// sides resolve them from their own registries, and the fingerprint
// check catches any skew between the two binaries.
type ScenarioWire struct {
	Chip         string      `json:"chip"`
	Bench        string      `json:"bench"`
	CoBenches    []string    `json:"co_benches,omitempty"`
	Kind         string      `json:"kind"`
	Cores        int         `json:"cores,omitempty"`
	SpendAging   bool        `json:"spend_aging"`
	Instructions uint64      `json:"instructions"`
	Seed         uint64      `json:"seed"`
	Params       *ParamsWire `json:"params,omitempty"`
	Timeline     bool        `json:"timeline,omitempty"`
	SampleEvery  float64     `json:"sample_every,omitempty"`
}

// ParamsWire carries strategy.Params as the raw float64 unit values —
// not the JSON-friendly microsecond forms the service API uses —
// because JSON round-trips float64 exactly while a µs conversion could
// perturb the last bit and break the fingerprint check.
type ParamsWire struct {
	Deadline       float64 `json:"deadline"`
	TimeSpan       float64 `json:"time_span"`
	MaxExceptions  int     `json:"max_exceptions"`
	DeadlineFactor float64 `json:"deadline_factor"`
}

// EncodeScenario flattens a scenario to its wire form, verifying the
// round trip: the encoded form is decoded back and must reproduce the
// identical fingerprint, so a scenario the codec cannot carry
// faithfully (an ad-hoc benchmark not in the registry, say) is refused
// here — the caller runs it locally — instead of mis-executing remotely.
func EncodeScenario(sc core.Scenario) (ScenarioWire, error) {
	letter, err := chipLetterFor(sc.Chip.Name)
	if err != nil {
		return ScenarioWire{}, err
	}
	w := ScenarioWire{
		Chip:         letter,
		Bench:        sc.Bench.Name,
		Kind:         string(sc.Kind),
		Cores:        sc.Cores,
		SpendAging:   sc.SpendAging,
		Instructions: sc.Instructions,
		Seed:         sc.Seed,
		Timeline:     sc.RecordTimeline,
		SampleEvery:  float64(sc.SampleEvery),
	}
	for _, cb := range sc.CoBenches {
		w.CoBenches = append(w.CoBenches, cb.Name)
	}
	if sc.Params != nil {
		w.Params = &ParamsWire{
			Deadline:       float64(sc.Params.Deadline),
			TimeSpan:       float64(sc.Params.TimeSpan),
			MaxExceptions:  sc.Params.MaxExceptions,
			DeadlineFactor: sc.Params.DeadlineFactor,
		}
	}
	back, err := w.Scenario()
	if err != nil {
		return ScenarioWire{}, fmt.Errorf("dist: scenario does not round-trip: %w", err)
	}
	if got, want := back.Fingerprint(), sc.Fingerprint(); got != want {
		return ScenarioWire{}, fmt.Errorf("dist: scenario does not round-trip: fingerprint %q != %q", got, want)
	}
	return w, nil
}

// Scenario reconstructs the core scenario from its wire form by
// resolving the local registries. Callers must verify the result's
// Fingerprint against the work unit's before running it.
func (w ScenarioWire) Scenario() (core.Scenario, error) {
	chip, err := core.ChipByName(w.Chip)
	if err != nil {
		return core.Scenario{}, err
	}
	benches, err := core.BenchesByName(append([]string{w.Bench}, w.CoBenches...))
	if err != nil {
		return core.Scenario{}, err
	}
	sc := core.Scenario{
		Chip:           chip,
		Bench:          benches[0],
		Kind:           core.StrategyKind(w.Kind),
		Cores:          w.Cores,
		SpendAging:     w.SpendAging,
		Instructions:   w.Instructions,
		Seed:           w.Seed,
		RecordTimeline: w.Timeline,
		SampleEvery:    units.Second(w.SampleEvery),
	}
	if len(benches) > 1 {
		sc.CoBenches = append([]workload.Benchmark(nil), benches[1:]...)
	}
	if w.Params != nil {
		sc.Params = &strategy.Params{
			Deadline:       units.Second(w.Params.Deadline),
			TimeSpan:       units.Second(w.Params.TimeSpan),
			MaxExceptions:  w.Params.MaxExceptions,
			DeadlineFactor: w.Params.DeadlineFactor,
		}
	}
	return sc, nil
}

// chipLetterFor maps a chip model name back to its registry letter.
func chipLetterFor(name string) (string, error) {
	for _, letter := range core.ChipLetters() {
		chip, err := core.ChipByName(letter)
		if err != nil {
			return "", err
		}
		if chip.Name == name {
			return letter, nil
		}
	}
	return "", fmt.Errorf("dist: chip %q is not in the registry", name)
}

// ClaimRequest asks the dispatcher for one work unit.
type ClaimRequest struct {
	WorkerID string `json:"worker_id"`
}

// Grant is a successful claim: a lease on one work unit. The worker
// must heartbeat within TTLMillis or the lease expires and the unit is
// reassigned.
type Grant struct {
	LeaseID   string   `json:"lease_id"`
	TTLMillis int64    `json:"ttl_ms"`
	Unit      WorkUnit `json:"unit"`
}

// ResultMsg is the worker's report for a leased unit: either a
// digest-protected outcome or an error (fingerprint mismatch, failed
// simulation) that releases the lease for reassignment without waiting
// for expiry.
type ResultMsg struct {
	Fingerprint string          `json:"fingerprint"`
	Outcome     json.RawMessage `json:"outcome,omitempty"`
	Digest      string          `json:"digest,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// ResultAck is the dispatcher's answer to a result post.
type ResultAck struct {
	Status string `json:"status"` // accepted | duplicate | retrying
}

// ResultDigest is the transport-integrity digest over a unit's outcome:
// SHA-256 of (fingerprint, 0x00, outcome JSON), truncated like the
// engine cache's entry digest. It catches torn and garbled bodies; a
// digest recorded at completion also lets an at-least-once duplicate
// delivery verify instead of conflict.
func ResultDigest(fingerprint string, outcome []byte) string {
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write(outcome)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// shortKey abbreviates a fingerprint for lease IDs and error text.
func shortKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:4])
}
