package service

import (
	"sync"
)

// State is a job's lifecycle phase. A job only moves forward:
// queued → running → one of done/failed/canceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled" // drained mid-run; resubmit to resume
)

// States lists every job state in lifecycle order — the /metrics
// per-state gauges iterate this slice, never a map.
var States = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// Event is one progress notification on a job's event stream.
type Event struct {
	State State `json:"state"`
	// Done/Total track completed scenario points while running.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error carries the failure reason on StateFailed/StateCanceled.
	Error string `json:"error,omitempty"`
}

// Job is one content-addressed unit of work in the registry. The ID is
// the spec fingerprint digest, so the registry key doubles as the
// single-flight key: a second submission of the same spec finds this
// job instead of creating another.
type Job struct {
	ID   string
	Spec Spec

	mu     sync.Mutex
	state  State
	done   int
	total  int
	err    string
	result *Result
	subs   map[chan Event]bool
	closed chan struct{} // closed on entering a terminal state
}

func newJob(id string, spec Spec, total int) *Job {
	return &Job{
		ID: id, Spec: spec, state: StateQueued, total: total,
		subs: make(map[chan Event]bool), closed: make(chan struct{}),
	}
}

// Snapshot returns the job's current event view.
func (j *Job) Snapshot() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Event{State: j.state, Done: j.done, Total: j.total, Error: j.err}
}

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the completed result, or nil before StateDone.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Terminal reports whether the job has finished (done, failed or
// canceled); the returned channel closes at that transition.
func (j *Job) Terminal() <-chan struct{} { return j.closed }

// Subscribe registers an event listener. The current snapshot is
// delivered first so late subscribers see the state they joined at;
// the cancel func unregisters and the channel is closed after the
// terminal event. Slow subscribers lose intermediate progress events
// (newest-wins, never blocking the executor) but always receive the
// terminal one.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	ch <- Event{State: j.state, Done: j.done, Total: j.total, Error: j.err}
	terminal := j.isTerminalLocked()
	if terminal {
		close(ch)
	} else {
		j.subs[ch] = true
	}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if j.subs[ch] {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	if terminal {
		return ch, func() {}
	}
	return ch, cancel
}

func (j *Job) isTerminalLocked() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	default:
		return false
	}
}

// publishLocked fans the current snapshot out to subscribers; terminal
// events close the stream. Callers hold j.mu.
func (j *Job) publishLocked() {
	ev := Event{State: j.state, Done: j.done, Total: j.total, Error: j.err}
	terminal := j.isTerminalLocked()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Full buffer: drop the oldest queued event to keep the
			// newest; progress is monotonic so intermediate drops are
			// harmless and the executor never blocks on a slow reader.
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- ev:
			default:
			}
		}
		if terminal {
			delete(j.subs, ch)
			close(ch)
		}
	}
	if terminal {
		close(j.closed)
	}
}

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.publishLocked()
}

// setProgress updates the completed-point counter.
func (j *Job) setProgress(done int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if done == j.done || j.isTerminalLocked() {
		return
	}
	j.done = done
	j.publishLocked()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, result *Result, errText string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.isTerminalLocked() {
		return
	}
	j.state = state
	j.result = result
	j.err = errText
	if state == StateDone {
		j.done = j.total
	}
	j.publishLocked()
}
