package dist

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxResultBytes bounds a result post's body. Outcomes are small JSON
// documents (a few KB with a timeline); 4 MiB is generous headroom, and
// the cap turns a runaway or malicious body into a clean 413.
const maxResultBytes = 4 << 20

// Register mounts the work-distribution endpoints on mux (Go 1.22
// method+pattern routing):
//
//	POST /v1/work/claim              → claim one leased unit (204 if none)
//	POST /v1/work/{lease}/heartbeat  → extend a lease (410 if gone)
//	POST /v1/work/{lease}/result     → deliver a result (202/200/409/410/422)
func (d *Dispatcher) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/work/claim", d.handleClaim)
	mux.HandleFunc("POST /v1/work/{lease}/heartbeat", d.handleHeartbeat)
	mux.HandleFunc("POST /v1/work/{lease}/result", d.handleResult)
}

func (d *Dispatcher) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad claim body: "+err.Error())
		return
	}
	if req.WorkerID == "" {
		httpError(w, http.StatusBadRequest, "claim must name a worker_id")
		return
	}
	grant, ok := d.Claim(req.WorkerID)
	if !ok {
		w.WriteHeader(http.StatusNoContent) // nothing to do; poll again
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	ttl, ok := d.Heartbeat(r.PathValue("lease"))
	if !ok {
		// Gone: expired and reassigned, or the job was abandoned. The
		// worker should stop computing this unit.
		httpError(w, http.StatusGone, "lease gone")
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl.Milliseconds()})
}

func (d *Dispatcher) handleResult(w http.ResponseWriter, r *http.Request) {
	var msg ResultMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBytes)).Decode(&msg); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "result body exceeds the limit")
			return
		}
		httpError(w, http.StatusBadRequest, "bad result body: "+err.Error())
		return
	}
	status, err := d.Result(r.PathValue("lease"), msg)
	if err != nil {
		switch {
		case errors.Is(err, ErrGone):
			httpError(w, http.StatusGone, err.Error())
		case errors.Is(err, ErrConflict):
			httpError(w, http.StatusConflict, err.Error())
		case errors.Is(err, ErrBadDigest), errors.Is(err, ErrMismatch):
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	code := http.StatusOK
	if status == "accepted" {
		code = http.StatusAccepted
	}
	writeJSON(w, code, ResultAck{Status: status})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
