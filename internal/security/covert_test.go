package security

import (
	"testing"

	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/units"
)

func TestCovertChannelTransmitsBits(t *testing.T) {
	// A 24-bit pattern through the single-domain i9-9900K.
	bits := []bool{
		true, false, true, true, false, false, true, false,
		false, true, true, false, true, false, false, true,
		true, true, false, false, true, false, true, false,
	}
	res, err := CovertChannel(dvfs.IntelI9_9900K(), bits, units.Microseconds(400), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Received) != len(bits) {
		t.Fatalf("received %d bits, want %d", len(res.Received), len(bits))
	}
	// The channel exists: the error rate must be far below chance.
	if res.ErrorRate() > 0.2 {
		t.Errorf("error rate %.2f; channel not functioning (sent %v, got %v)",
			res.ErrorRate(), res.Sent, res.Received)
	}
	// §8's concern is real: kbit/s-scale bandwidth.
	if res.BitsPerSecond < 1000 {
		t.Errorf("bandwidth %v bit/s implausibly low", res.BitsPerSecond)
	}
}

func TestCovertChannelAllZerosSilence(t *testing.T) {
	bits := make([]bool, 16)
	res, err := CovertChannel(dvfs.IntelI9_9900K(), bits, units.Microseconds(400), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Errorf("silent sender produced %d spurious 1-bits", res.BitErrors)
	}
}

func TestCovertChannelRequiresSharedDomain(t *testing.T) {
	if _, err := CovertChannel(dvfs.XeonSilver4208(), []bool{true}, units.Microseconds(400), 1); err == nil {
		t.Error("per-core-domain chip accepted; the channel needs a shared domain")
	}
}

func TestCovertChannelValidation(t *testing.T) {
	if _, err := CovertChannel(dvfs.IntelI9_9900K(), nil, units.Microseconds(400), 1); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := CovertChannel(dvfs.IntelI9_9900K(), []bool{true}, units.Microseconds(10), 1); err == nil {
		t.Error("window below deadline accepted")
	}
}

func TestEpisodesOf(t *testing.T) {
	timeline := []cpu.ModeChange{
		{T: 0, Mode: cpu.ModeE},
		{T: units.Microseconds(10), Mode: cpu.ModeCf},
		{T: units.Microseconds(15), Mode: cpu.ModeCv}, // still conservative
		{T: units.Microseconds(60), Mode: cpu.ModeE},
		{T: units.Microseconds(210), Mode: cpu.ModeCf},
		{T: units.Microseconds(220), Mode: cpu.ModeE},
	}
	eps := episodesOf(timeline)
	if len(eps) != 2 {
		t.Fatalf("got %d episodes, want 2: %+v", len(eps), eps)
	}
	if eps[0].start != units.Microseconds(10) || eps[0].end != units.Microseconds(60) {
		t.Errorf("episode 0 = %+v", eps[0])
	}
	if eps[1].start != units.Microseconds(210) || eps[1].end != units.Microseconds(220) {
		t.Errorf("episode 1 = %+v", eps[1])
	}
}

func TestDecodeEpisodesDriftRecovery(t *testing.T) {
	w := units.Microseconds(100)
	// Three 1-bits in windows 0, 2, 4; each episode lasts 50 µs, so
	// without drift correction the third episode (starting at
	// 400 + 2·0.9·50 = 490 µs in wall time) would land in window 4
	// anyway... shift it artificially into window 5 territory to prove
	// the correction matters.
	timeline := []cpu.ModeChange{
		{T: units.Microseconds(5), Mode: cpu.ModeCf},
		{T: units.Microseconds(55), Mode: cpu.ModeE},
		{T: units.Microseconds(250), Mode: cpu.ModeCf}, // window 2 + 1 drift unit
		{T: units.Microseconds(300), Mode: cpu.ModeE},
		{T: units.Microseconds(495), Mode: cpu.ModeCf}, // window 4 + 2 drift units
		{T: units.Microseconds(545), Mode: cpu.ModeE},
	}
	got := decodeEpisodes(timeline, w, 6)
	want := []bool{true, false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d = %t, want %t (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestDecodeEpisodesIgnoresOutOfRange(t *testing.T) {
	timeline := []cpu.ModeChange{
		{T: units.Microseconds(950), Mode: cpu.ModeCf},
		{T: units.Microseconds(990), Mode: cpu.ModeE},
	}
	got := decodeEpisodes(timeline, units.Microseconds(100), 3)
	for i, b := range got {
		if b {
			t.Errorf("out-of-range episode decoded into window %d", i)
		}
	}
}
