package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
)

// resultStore persists completed Results as content-addressed JSON
// files under <dir>/results/<id>.json, following the engine cache's
// trust model: each entry stores the spec fingerprint it answers plus
// an integrity digest over (fingerprint, result bytes), so a garbled or
// foreign file reads as a miss — recomputation, never a wrong result.
// Like the engine cache, a provably corrupt file is self-healed out of
// the way: renamed to <name>.quarantined so the recomputed result can
// land cleanly while the evidence survives for inspection. Writes go
// through temp-file + rename so concurrent readers and a killed daemon
// never observe torn entries.
type resultStore struct {
	dir string

	quarantined atomic.Int64
}

// storeEntry is the on-disk record.
type storeEntry struct {
	Fingerprint string          `json:"fingerprint"`
	Result      json.RawMessage `json:"result"`
	Sum         string          `json:"sum"`
}

func storeSum(fingerprint string, result []byte) string {
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write(result)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func newResultStore(dir string) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &resultStore{dir: dir}, nil
}

func (s *resultStore) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// get loads a stored result for (id, fingerprint). Any mismatch —
// missing file, bad JSON, foreign fingerprint, failed digest — is a
// miss; a provably corrupt file (undecodable, or failing its own
// integrity digest) is additionally quarantined so the slot is free for
// the recomputed entry. A foreign entry whose digest is self-consistent
// is left alone: it is a valid result for some other spec, not damage.
func (s *resultStore) get(id, fingerprint string) (*Result, bool) {
	path := s.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var ent storeEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		s.quarantine(path)
		return nil, false
	}
	if ent.Sum != storeSum(ent.Fingerprint, ent.Result) {
		s.quarantine(path)
		return nil, false
	}
	if ent.Fingerprint != fingerprint {
		return nil, false
	}
	var r Result
	if err := json.Unmarshal(ent.Result, &r); err != nil {
		s.quarantine(path)
		return nil, false
	}
	return &r, true
}

// quarantine moves a corrupt entry aside (best effort — removal if the
// rename fails), mirroring the engine cache's self-heal.
func (s *resultStore) quarantine(path string) {
	if err := os.Rename(path, path+".quarantined"); err != nil {
		os.Remove(path)
	}
	s.quarantined.Add(1)
}

// Quarantined reports how many corrupt entries this store moved aside.
func (s *resultStore) Quarantined() int64 { return s.quarantined.Load() }

// put persists a result. Best-effort like the engine cache: a full
// disk only disables reuse across restarts, it never fails the job.
func (s *resultStore) put(id, fingerprint string, r *Result) {
	raw, err := json.Marshal(r)
	if err != nil {
		return
	}
	data, err := json.Marshal(storeEntry{Fingerprint: fingerprint, Result: raw, Sum: storeSum(fingerprint, raw)})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
	}
}
