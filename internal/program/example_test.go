package program_test

import (
	"fmt"

	"suit/internal/program"
)

// Recording a trace by executing a program: the AES bursts land exactly
// where the AES-GCM block loop puts them.
func ExampleProgram_Record() {
	p := program.AESGCMSeal(64) // 4 cipher blocks
	tr, err := p.Record()
	if err != nil {
		fmt.Println(err)
		return
	}
	byOp := tr.CountByOpcode()
	fmt.Printf("instructions: %d\n", tr.Total)
	for _, name := range []string{"AESENC", "VPCLMULQDQ"} {
		for op, n := range byOp {
			if op.String() == name {
				fmt.Printf("%s: %d\n", name, n)
			}
		}
	}
	// Output:
	// instructions: 148
	// AESENC: 50
	// VPCLMULQDQ: 10
}
