// Package emul implements SUIT's instruction emulation (§3.4): when a
// disabled instruction traps, the OS can run a software replacement in
// user space instead of switching DVFS curves. The paper prescribes
// non-vectorised alternatives for the SIMD instructions and a
// side-channel-resilient (table-free, constant-time) AES implementation
// for AESENC. This package provides those replacements as real, executable
// Go code — validated against reference semantics — plus the cost model
// used by the simulator (§5.3 call delays, per-instruction cycle counts).
package emul

import (
	"fmt"
	"math"
)

// Vec128 is a 128-bit SSE register value. Lane helpers expose the views
// the emulated instructions operate on; lane 0 is the least significant.
type Vec128 struct {
	Lo, Hi uint64
}

// U32 returns the 32-bit lane i (0..3).
func (v Vec128) U32(i int) uint32 {
	switch i {
	case 0:
		return uint32(v.Lo)
	case 1:
		return uint32(v.Lo >> 32)
	case 2:
		return uint32(v.Hi)
	case 3:
		return uint32(v.Hi >> 32)
	}
	panic(fmt.Sprintf("emul: lane %d out of range", i))
}

// WithU32 returns v with 32-bit lane i replaced.
func (v Vec128) WithU32(i int, x uint32) Vec128 {
	switch i {
	case 0:
		v.Lo = v.Lo&^0xFFFFFFFF | uint64(x)
	case 1:
		v.Lo = v.Lo&0xFFFFFFFF | uint64(x)<<32
	case 2:
		v.Hi = v.Hi&^0xFFFFFFFF | uint64(x)
	case 3:
		v.Hi = v.Hi&0xFFFFFFFF | uint64(x)<<32
	default:
		panic(fmt.Sprintf("emul: lane %d out of range", i))
	}
	return v
}

// F64 returns the 64-bit float lane i (0..1).
func (v Vec128) F64(i int) float64 {
	switch i {
	case 0:
		return math.Float64frombits(v.Lo)
	case 1:
		return math.Float64frombits(v.Hi)
	}
	panic(fmt.Sprintf("emul: lane %d out of range", i))
}

// FromF64 packs two float64 lanes.
func FromF64(lo, hi float64) Vec128 {
	return Vec128{Lo: math.Float64bits(lo), Hi: math.Float64bits(hi)}
}

// Bytes returns the 16 bytes little-endian (byte 0 = bits 7:0 of Lo).
func (v Vec128) Bytes() [16]byte {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v.Lo >> (8 * i))
		b[i+8] = byte(v.Hi >> (8 * i))
	}
	return b
}

// FromBytes packs 16 little-endian bytes.
func FromBytes(b [16]byte) Vec128 {
	var v Vec128
	for i := 7; i >= 0; i-- {
		v.Lo = v.Lo<<8 | uint64(b[i])
		v.Hi = v.Hi<<8 | uint64(b[i+8])
	}
	return v
}

// The scalar emulations. Each function implements the architectural
// semantics of the corresponding x86 instruction using only general-
// purpose operations — what a compiler would emit without SSE/AVX.

// VOR emulates POR/VPOR: bitwise or.
func VOR(a, b Vec128) Vec128 { return Vec128{a.Lo | b.Lo, a.Hi | b.Hi} }

// VXOR emulates PXOR/VPXOR: bitwise xor.
func VXOR(a, b Vec128) Vec128 { return Vec128{a.Lo ^ b.Lo, a.Hi ^ b.Hi} }

// VAND emulates PAND/VPAND: bitwise and.
func VAND(a, b Vec128) Vec128 { return Vec128{a.Lo & b.Lo, a.Hi & b.Hi} }

// VANDN emulates PANDN/VPANDN: ~a & b (note the x86 operand order).
func VANDN(a, b Vec128) Vec128 { return Vec128{^a.Lo & b.Lo, ^a.Hi & b.Hi} }

// VPADDQ emulates PADDQ: lane-wise 64-bit wrapping add.
func VPADDQ(a, b Vec128) Vec128 { return Vec128{a.Lo + b.Lo, a.Hi + b.Hi} }

// VPSRAD emulates PSRAD: arithmetic right shift of each 32-bit lane by
// count bits. Counts ≥ 32 fill with the sign bit, as the hardware does.
func VPSRAD(a Vec128, count uint) Vec128 {
	if count > 31 {
		count = 31
	}
	var out Vec128
	for i := 0; i < 4; i++ {
		out = out.WithU32(i, uint32(int32(a.U32(i))>>count))
	}
	return out
}

// VPCMPEQD emulates PCMPEQD: lane-wise 32-bit equality producing all-ones
// or all-zeros masks.
func VPCMPEQD(a, b Vec128) Vec128 {
	var out Vec128
	for i := 0; i < 4; i++ {
		var m uint32
		if a.U32(i) == b.U32(i) {
			m = 0xFFFFFFFF
		}
		out = out.WithU32(i, m)
	}
	return out
}

// VPMAXSD emulates PMAXSD: lane-wise signed 32-bit maximum.
func VPMAXSD(a, b Vec128) Vec128 {
	var out Vec128
	for i := 0; i < 4; i++ {
		x, y := int32(a.U32(i)), int32(b.U32(i))
		if y > x {
			x = y
		}
		out = out.WithU32(i, uint32(x))
	}
	return out
}

// VSQRTPD emulates SQRTPD: lane-wise double-precision square root.
func VSQRTPD(a Vec128) Vec128 {
	return FromF64(math.Sqrt(a.F64(0)), math.Sqrt(a.F64(1)))
}

// VPCLMULQDQ emulates PCLMULQDQ: the carry-less (GF(2)[x]) product of two
// 64-bit operands, yielding a 128-bit result. imm selects the source
// quadwords as in the hardware encoding: bit 0 picks a.Hi, bit 4 picks
// b.Hi.
func VPCLMULQDQ(a, b Vec128, imm uint8) Vec128 {
	x := a.Lo
	if imm&0x01 != 0 {
		x = a.Hi
	}
	y := b.Lo
	if imm&0x10 != 0 {
		y = b.Hi
	}
	return clmul64(x, y)
}

// clmul64 computes the 128-bit carry-less product of two 64-bit values
// with a branch-free shift-and-xor loop (constant-time: the loop trip
// count and memory access pattern are data-independent).
func clmul64(x, y uint64) Vec128 {
	var lo, hi uint64
	for i := 0; i < 64; i++ {
		mask := -(y >> i & 1) // all-ones if bit i of y is set
		lo ^= (x << i) & mask
		if i > 0 {
			hi ^= (x >> (64 - i)) & mask
		}
	}
	return Vec128{Lo: lo, Hi: hi}
}
