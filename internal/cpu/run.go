package cpu

import (
	"errors"
	"fmt"
	"math"
	"suit/internal/isa"

	"suit/internal/msr"
	"suit/internal/units"
)

// maxSteps bounds the event loop against pathological configurations
// (e.g. a strategy that neither enables nor emulates, re-trapping the same
// instruction forever).
const maxSteps = 200_000_000

// Run executes all traces to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	// OS boot: the strategy configures the machine at time zero.
	m.handlerTime = 0
	m.strategy.Init(controller{m})
	// Transitions requested during Init complete instantaneously: the
	// workload is defined to start on the strategy's initial curve
	// (the paper's simulations begin in steady state).
	for _, d := range m.domains {
		if d.pending != nil {
			d.freq = d.pending.freqTarget
			if d.pending.freqTarget == 0 {
				d.freq = m.pts.Get(d.pending.target).F
			}
			d.volt = m.pts.Get(d.pending.target).V
			d.voltGoal = d.volt
			d.voltT0, d.voltT1 = 0, 0
			d.mode = d.pending.target
			d.pending = nil
		}
	}
	for _, a := range m.scheduled {
		a.fn()
	}
	m.scheduled = m.scheduled[:0]
	m.handlerTime = 0

	for step := 0; ; step++ {
		if step >= maxSteps {
			return Result{}, errors.New("cpu: event-loop step limit exceeded")
		}
		t, kind, who := m.nextEvent()
		if kind == evNone {
			break
		}
		if t < m.now {
			return Result{}, fmt.Errorf("cpu: time went backwards: %v < %v", t, m.now)
		}
		m.advanceTo(t)
		switch kind {
		case evSched:
			a := m.scheduled[who]
			m.scheduled = append(m.scheduled[:who], m.scheduled[who+1:]...)
			a.fn()
		case evFreqApply:
			m.applyFreq(m.domains[who])
		case evTransitionEnd:
			d := m.domains[who]
			d.mode = d.pending.target
			d.pending = nil
		case evDeadline:
			m.fireDeadline(who)
		case evStallStart:
			// No state change: the boundary only segments power/timing.
			m.domains[who].pending.stallFrom = -1 // consumed as an event
		case evCoreArrive:
			m.coreArrive(m.cores[who])
		case evCoreUnblock:
			m.cores[who].blockedUntil = 0
			// The pending (retrying) instruction is handled on the next
			// iteration via evCoreArrive at the same timestamp.
		case evNone:
			panic("cpu: evNone dispatched; nextEvent filters it above")
		}
		// The measurement interval ends when the last core commits its
		// stream; residual transitions or timer events past that point
		// would otherwise inflate energy and residency totals.
		if m.allDone() {
			break
		}
	}

	// Finalise.
	var maxDone units.Second
	for _, c := range m.cores {
		m.res.PerCore[c.id] = c.done
		if c.done > maxDone {
			maxDone = c.done
		}
		m.res.Instructions += c.tr.Total
	}
	m.res.Duration = maxDone
	m.res.Energy = m.meter.Energy()
	if maxDone > 0 {
		m.res.AvgPower = units.Power(m.res.Energy, maxDone)
	}
	m.res.RAPLCounter = m.rapl.Counter()
	return m.res, nil
}

// allDone reports whether every core has committed its whole stream.
func (m *Machine) allDone() bool {
	for _, c := range m.cores {
		if !c.finished {
			return false
		}
	}
	return true
}

type evKind uint8

const (
	evNone evKind = iota
	evSched
	evFreqApply
	evTransitionEnd
	evStallStart
	evDeadline
	evCoreArrive
	evCoreUnblock
)

// nextEvent returns the earliest pending event.
func (m *Machine) nextEvent() (units.Second, evKind, int) {
	best := units.Second(math.Inf(1))
	kind := evNone
	who := -1
	consider := func(t units.Second, k evKind, w int) {
		if k == evNone || t >= best && kind != evNone {
			return
		}
		best, kind, who = t, k, w
	}
	// Deferred handler effects come first so that, at equal timestamps,
	// an instruction-enable lands before the trapped core retries.
	for i, a := range m.scheduled {
		consider(a.t, evSched, i)
	}
	for i, d := range m.domains {
		if p := d.pending; p != nil {
			if p.freqApply > 0 && p.freqTarget != 0 {
				if p.stallFrom >= 0 && p.stallFrom > m.now {
					consider(p.stallFrom, evStallStart, i)
				}
				consider(p.freqApply, evFreqApply, i)
			} else {
				consider(p.end, evTransitionEnd, i)
			}
		}
		if d.deadlineAt > 0 {
			consider(d.deadlineAt, evDeadline, i)
		}
	}
	for i, c := range m.cores {
		if c.finished {
			continue
		}
		if c.blockedUntil > m.now {
			consider(c.blockedUntil, evCoreUnblock, i)
			continue
		}
		d := m.domainOf(c.id)
		if d.stalledAt(m.now) {
			// The core resumes at the frequency application; that event
			// is already a candidate.
			continue
		}
		nextIdx := c.tr.Total
		if c.idx < len(c.tr.Events) {
			nextIdx = c.tr.Events[c.idx].Index
		}
		remaining := float64(nextIdx) - c.pos
		if remaining <= 0 {
			consider(m.now, evCoreArrive, i)
			continue
		}
		rate := c.tr.IPC * float64(d.freq) / c.rate // instructions/second
		consider(m.now+units.Second(remaining/rate), evCoreArrive, i)
	}
	return best, kind, who
}

// applyFreq commits a pending frequency change; if the voltage ramp is
// still outstanding, the transition stays pending until its end.
func (m *Machine) applyFreq(d *domain) {
	p := d.pending
	d.freq = p.freqTarget
	d.msrs.Poke(msr.IA32PerfStatus,
		msr.EncodePerfStatus(uint8(d.freq.GHz()*10), float64(d.voltAt(m.now))))
	p.freqApply = 0
	p.freqTarget = 0
	if p.end <= m.now {
		d.mode = p.target
		d.pending = nil
	}
}

// fireDeadline delivers the timer interrupt to the strategy.
func (m *Machine) fireDeadline(domainID int) {
	d := m.domains[domainID]
	d.deadlineAt = 0
	m.res.DeadlineFires++
	m.handlerTime = m.now
	m.handlerCore = -1
	m.strategy.OnDeadline(controller{m}, domainID)
}

// coreArrive processes a core reaching its next trace event (or the end
// of its stream).
func (m *Machine) coreArrive(c *core) {
	if c.idx >= len(c.tr.Events) {
		// End of stream.
		c.pos = float64(c.tr.Total)
		c.finished = true
		c.done = m.now
		return
	}
	ev := c.tr.Events[c.idx]
	c.pos = float64(ev.Index)
	d := m.domainOf(c.id)

	trapped := ev.Op.IsFaultable() || (m.cfg.TrapIMUL && ev.Op == isa.OpIMUL)
	if d.disabled && trapped {
		// #DO trap (§3.3). The instruction re-executes after the handler
		// unless the strategy emulates it.
		m.res.Exceptions++
		d.exceptions = append(d.exceptions, m.now)
		if len(d.exceptions) > 8192 {
			// Thrashing prevention only looks back a short window; keep
			// the tail.
			n := copy(d.exceptions, d.exceptions[len(d.exceptions)-4096:])
			d.exceptions = d.exceptions[:n]
		}
		doCount, err := d.msrs.Read(msr.SUITDOCount)
		if err != nil {
			panic(err) // machine invariant: SUITDOCount is always mapped
		}
		d.msrs.Poke(msr.SUITDOCount, doCount+1)
		c.retry = true
		m.handlerTime = m.now + m.effExceptionDelay()
		m.handlerCore = c.id
		m.strategy.OnDisabledOpcode(controller{m}, m.domainIndexOf(c.id), c.id, ev.Op)
		m.handlerCore = -1
		c.blockedUntil = m.handlerTime
		return
	}

	// Execute. Safety monitor: a faultable (or IMUL) instruction running
	// below its margin silently corrupts (§2.3) — SUIT configurations
	// must never reach this.
	off := m.safeOffset(d, m.now)
	if m.cfg.Faults.Faults(ev.Op, off, m.cfg.HardenedIMUL) {
		m.res.Faults = append(m.res.Faults, FaultRecord{
			T: m.now, Core: c.id, Op: ev.Op, V: d.voltAt(m.now),
			Margin: -off - m.cfg.Faults.PhysicalMargin(ev.Op, m.cfg.HardenedIMUL),
		})
	}
	// Hardware deadline reset: executing an instruction that would be
	// disabled on the efficient curve restarts the count-down (§4.1).
	if d.deadlineAt > 0 && trapped && !m.cfg.NoDeadlineReset {
		d.deadlineAt = m.now + d.deadlineDur
	}
	c.retry = false
	c.pos = float64(ev.Index) + 1
	c.idx++
	if c.idx >= len(c.tr.Events) && c.pos >= float64(c.tr.Total) {
		c.finished = true
		c.done = m.now
	}
}

// advanceTo integrates power and residency from m.now to t and moves the
// clock. Within the segment each domain's frequency and each core's
// activity are constant; the voltage may be mid-ramp and is integrated
// analytically.
func (m *Machine) advanceTo(t units.Second) {
	dt := t - m.now
	if dt < 0 {
		panic("cpu: advanceTo into the past")
	}
	if dt == 0 {
		m.now = t
		return
	}
	// Fixed-grid operating-point sampling (domain 0). The frequency is
	// constant within a segment; the voltage may be mid-ramp.
	if iv := m.cfg.SampleEvery; iv > 0 {
		d0 := m.domains[0]
		for m.nextSample <= t && len(m.res.Samples) < timelineCap {
			m.res.Samples = append(m.res.Samples, StateSample{
				T: m.nextSample, F: d0.freq, V: d0.voltAt(m.nextSample), Mode: d0.mode,
			})
			m.nextSample += iv
		}
	}
	pm := m.cfg.Chip.Power
	exp := pm.VoltExp
	if exp == 0 {
		exp = 2
	}
	energy := (float64(pm.Uncore) + float64(pm.UncorePerCore)*float64(len(m.cores))) * float64(dt)
	for _, d := range m.domains {
		v2 := d.voltPowIntegral(m.now, t, 2)   // ∫V² dt (leakage)
		ve := d.voltPowIntegral(m.now, t, exp) // ∫Vᵉ dt (dynamic)
		for _, c := range d.cores {
			activity := 1.0
			switch {
			case c.finished:
				activity = 0.02
			case c.blockedUntil > m.now || d.stalledAt(m.now):
				activity = 0.1
			}
			// Core progress for running cores.
			if activity == 1.0 && !c.finished {
				rate := c.tr.IPC * float64(d.freq) / c.rate
				c.pos += rate * float64(dt)
			}
			energy += pm.CoreCeff * ve * float64(d.freq) * activity
			energy += pm.LeakGV * v2
		}
		// Residency for the first domain (reports use domain 0).
		if d == m.domains[0] {
			mode := d.mode
			if int(mode) < int(numModes) {
				m.res.Residency[mode] += dt
			}
		}
	}
	m.meter.Add(units.Power(units.Joule(energy), dt), dt)
	m.rapl.Deposit(units.Joule(energy))
	m.now = t
}

// voltPowIntegral computes ∫ V(τ)ᵉ dτ over [t0, t1] with the domain's
// piecewise-linear voltage profile. The quadratic case is exact; other
// exponents use Simpson's rule per linear segment, which is accurate to
// ~10⁻⁸ relative over the millivolt-scale ramps that occur here.
func (d *domain) voltPowIntegral(t0, t1 units.Second, exp float64) float64 {
	total := 0.0
	segment := func(a, b units.Second) {
		if b <= a {
			return
		}
		va, vb := float64(d.voltAt(a)), float64(d.voltAt(b))
		if exp == 2 {
			// Exact: ∫(va + (vb-va)·s)² = (va² + va·vb + vb²)/3 × length.
			total += (va*va + va*vb + vb*vb) / 3 * float64(b-a)
			return
		}
		vm := (va + vb) / 2
		total += (math.Pow(va, exp) + 4*math.Pow(vm, exp) + math.Pow(vb, exp)) / 6 * float64(b-a)
	}
	// Split at the ramp boundaries.
	points := []units.Second{t0, t1}
	if d.voltT0 > t0 && d.voltT0 < t1 {
		points = append(points, d.voltT0)
	}
	if d.voltT1 > t0 && d.voltT1 < t1 {
		points = append(points, d.voltT1)
	}
	// Simple 4-element sort.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && points[j] < points[j-1]; j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	for i := 1; i < len(points); i++ {
		segment(points[i-1], points[i])
	}
	return total
}
