package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVoltConversions(t *testing.T) {
	v := MilliVolts(-97)
	if !approx(float64(v), -0.097, 1e-12) {
		t.Errorf("MilliVolts(-97) = %v", float64(v))
	}
	if !approx(v.MilliVolts(), -97, 1e-9) {
		t.Errorf("MilliVolts() = %v", v.MilliVolts())
	}
	if got := v.String(); got != "-97 mV" {
		t.Errorf("String = %q", got)
	}
}

func TestHertzConversions(t *testing.T) {
	f := GHz(4.7)
	if f != Hertz(4.7e9) {
		t.Errorf("GHz(4.7) = %v", float64(f))
	}
	if !approx(f.GHz(), 4.7, 1e-12) {
		t.Errorf("GHz() = %v", f.GHz())
	}
	if MHz(500) != Hertz(5e8) {
		t.Error("MHz(500) wrong")
	}
	if got := f.String(); got != "4.70 GHz" {
		t.Errorf("String = %q", got)
	}
}

func TestSecondConversions(t *testing.T) {
	s := Microseconds(350)
	if !approx(float64(s), 350e-6, 1e-15) {
		t.Errorf("Microseconds(350) = %v", float64(s))
	}
	if !approx(s.Microseconds(), 350, 1e-9) {
		t.Errorf("Microseconds() = %v", s.Microseconds())
	}
	if Milliseconds(14) != Second(0.014) {
		t.Error("Milliseconds(14) wrong")
	}
	if got := s.Duration(); got != 350*time.Microsecond {
		t.Errorf("Duration = %v", got)
	}
	if got := FromDuration(2 * time.Second); got != 2 {
		t.Errorf("FromDuration = %v", got)
	}
}

func TestSecondDurationSaturates(t *testing.T) {
	if Second(1e30).Duration() != time.Duration(1<<63-1) {
		t.Error("positive overflow must saturate")
	}
	if Second(-1e30).Duration() != -time.Duration(1<<63-1) {
		t.Error("negative overflow must saturate")
	}
}

func TestSecondString(t *testing.T) {
	cases := map[Second]string{
		2.5:     "2.500 s",
		0.014:   "14.000 ms",
		31e-6:   "31.000 µs",
		340e-9:  "340.0 ns",
		-350e-6: "-350.000 µs",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Second(%g).String() = %q, want %q", float64(s), got, want)
		}
	}
}

func TestEnergyAndCycles(t *testing.T) {
	if Energy(95, 2) != 190 {
		t.Error("Energy(95 W, 2 s) != 190 J")
	}
	if Cycles(GHz(3), Microseconds(1)) != 3000 {
		t.Errorf("Cycles = %v", Cycles(GHz(3), Microseconds(1)))
	}
	if !approx(float64(TimeFor(3000, GHz(3))), 1e-6, 1e-18) {
		t.Errorf("TimeFor = %v", TimeFor(3000, GHz(3)))
	}
}

func TestCyclesTimeForInverse(t *testing.T) {
	prop := func(rawN uint32, rawF uint16) bool {
		n := float64(rawN%1_000_000) + 1
		f := GHz(0.5 + float64(rawF%50)/10)
		back := Cycles(f, TimeFor(n, f))
		return approx(back, n, n*1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if got := Watt(93.25).String(); got != "93.25 W" {
		t.Errorf("Watt String = %q", got)
	}
	if got := Joule(1.5).String(); got != "1.500 J" {
		t.Errorf("Joule String = %q", got)
	}
	if got := Celsius(88).String(); got != "88.0 °C" {
		t.Errorf("Celsius String = %q", got)
	}
}
