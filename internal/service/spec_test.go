package service

import (
	"strings"
	"testing"

	"suit/internal/engine"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	s, err := Spec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != KindSweep || s.Chip != "C" || s.OffsetMV != 97 ||
		s.Instructions != 2_000_000 || s.Seed != 1 || s.Top != 10 {
		t.Errorf("defaults wrong: %+v", s)
	}
	if len(s.Benches) != 5 {
		t.Errorf("default benches = %v", s.Benches)
	}
	if len(s.Params) != 0 {
		t.Errorf("sweep default params should stay empty (implied grid), got %v", s.Params)
	}
}

func TestSpecNormalizeSimDefaultsParams(t *testing.T) {
	s, err := Spec{Kind: KindSim}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Params) != 1 {
		t.Fatalf("sim params = %v, want the chip default setting", s.Params)
	}
	// Chip C takes the 𝒜&𝒞 Table 7 defaults: 30 µs / 450 µs / 3 / 14.
	p := s.Params[0]
	if p.DeadlineUS != 30 || p.TimeSpanUS != 450 || p.MaxExceptions != 3 || p.DeadlineFactor != 14 {
		t.Errorf("sim default params = %+v", p)
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Kind: "frob"},
		{Chip: "Z"},
		{OffsetMV: 50},
		{Instructions: 100},
		{Top: -1},
		{Benches: []string{"no-such-workload"}},
		{Params: []ParamSpec{{DeadlineUS: -1, TimeSpanUS: 450, MaxExceptions: 3, DeadlineFactor: 14}}},
	}
	for i, c := range cases {
		if _, err := c.Normalize(); err == nil {
			t.Errorf("case %d (%+v): want error", i, c)
		}
	}
}

func TestSpecContentAddressing(t *testing.T) {
	a, err := Spec{Chip: "c", Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{}.Normalize() // same after defaults
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() || a.ID() != b.ID() {
		t.Errorf("equivalent specs got different identities:\n  %s\n  %s", a.Fingerprint(), b.Fingerprint())
	}
	c, err := Spec{Seed: 2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == a.ID() {
		t.Error("different seeds must have different IDs")
	}
	if len(a.ID()) != 32 || strings.ToLower(a.ID()) != a.ID() {
		t.Errorf("ID should be 32 lowercase hex chars, got %q", a.ID())
	}
}

// TestSpecScenarioSeeds: the explicit per-scenario seeds must equal
// what a dedicated engine with BaseSeed = Spec.Seed would derive, so a
// served sweep matches `suitsweep -seed N` point for point.
func TestSpecScenarioSeeds(t *testing.T) {
	s, err := Spec{
		Benches: []string{"VLC"},
		Params:  []ParamSpec{{DeadlineUS: 30, TimeSpanUS: 450, MaxExceptions: 3, DeadlineFactor: 14}},
		Seed:    7,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	scs, grid, err := s.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || len(grid) != 1 {
		t.Fatalf("expansion: %d scenarios, %d grid points", len(scs), len(grid))
	}
	sc := scs[0]
	zero := sc
	zero.Seed = 0
	want := engine.DeriveSeed(7, zero.Fingerprint())
	if sc.Seed != want {
		t.Errorf("scenario seed %d, want DeriveSeed(spec.Seed, zero-seed fingerprint) = %d", sc.Seed, want)
	}
}
