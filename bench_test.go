// Package suit's benchmark harness regenerates every table and figure of
// the paper as a Go benchmark, one per experiment (see DESIGN.md for the
// experiment index). Each benchmark reports its headline quantity as a
// custom metric so `go test -bench . -benchmem` doubles as a compact
// reproduction run:
//
//	go test -bench=Table6 -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
//
// Absolute paper numbers are not expected to match (the substrate is a
// simulator, see DESIGN.md); the reported metrics track the paper's
// shapes and are recorded against the paper in EXPERIMENTS.md.
package suit_test

import (
	"math"
	"testing"

	"suit/internal/baselines"
	"suit/internal/core"
	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/emul"
	"suit/internal/guardband"
	"suit/internal/isa"
	"suit/internal/sched"
	"suit/internal/security"
	"suit/internal/strategy"
	"suit/internal/trace"
	"suit/internal/uarch"
	"suit/internal/units"
	"suit/internal/workload"
)

const (
	benchInstr    = 300_000_000
	benchInstrNet = 100_000_000
)

func mustRun(b *testing.B, s core.Scenario) core.Outcome {
	b.Helper()
	o, err := core.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// mustRunAll fans independent scenarios out through the shared parallel
// experiment engine and returns their outcomes in scenario order.
func mustRunAll(b *testing.B, scs ...core.Scenario) []core.Outcome {
	b.Helper()
	outs, err := core.RunAll(scs)
	if err != nil {
		b.Fatal(err)
	}
	return outs
}

func mustBench(b *testing.B, name string) workload.Benchmark {
	b.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	return w
}

// BenchmarkTable1 derives the per-instruction fault margins from the
// Kogler fault counts — the data behind Table 1.
func BenchmarkTable1(b *testing.B) {
	gb := guardband.Default()
	var sink units.Volt
	for i := 0; i < b.N; i++ {
		for _, info := range isa.Table1() {
			sink += gb.PhysicalMargin(info.Op, true)
		}
	}
	_ = sink
	b.ReportMetric(float64(len(isa.Table1())), "instructions")
}

// BenchmarkTable2 computes the undervolting response of all four CPUs at
// both design points (Table 2 / Fig 12).
func BenchmarkTable2(b *testing.B) {
	chips := []dvfs.Chip{
		dvfs.IntelI5_1035G1(), dvfs.IntelI9_9900K(),
		dvfs.AMDRyzen7700X(), dvfs.XeonSilver4208(),
	}
	var last core.UndervoltPoint
	for i := 0; i < b.N; i++ {
		for _, c := range chips {
			last = core.UndervoltResponse(c, units.MilliVolts(-97))
		}
	}
	b.ReportMetric(last.Eff*100, "xeon-eff-%")
}

// BenchmarkFigure12 sweeps the i9-9900K over voltage offsets.
func BenchmarkFigure12(b *testing.B) {
	chip := dvfs.IntelI9_9900K()
	var eff float64
	for i := 0; i < b.N; i++ {
		for _, mv := range []float64{0, -40, -70, -97} {
			eff = core.UndervoltResponse(chip, units.MilliVolts(mv)).Eff
		}
	}
	b.ReportMetric(eff*100, "eff-at-97mV-%")
}

// BenchmarkFigure5 runs VLC under fV with timeline recording — the curve
// switching around AES bursts.
func BenchmarkFigure5(b *testing.B) {
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		o = mustRun(b, core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: workload.VLC(), Kind: core.KindFV,
			SpendAging: true, Instructions: benchInstrNet, Seed: uint64(i + 1),
			RecordTimeline: true,
		})
	}
	b.ReportMetric(float64(len(o.Run.Timeline)), "switches")
}

// BenchmarkFigure6 drives a single long burst through the fV sequence
// E → Cf → Cv → E.
func BenchmarkFigure6(b *testing.B) {
	wl := workload.Benchmark{
		Name: "longburst", Suite: workload.Network, IPC: 2,
		BurstEvery: 80e6, BurstLen: 40_000, BurstIntraGap: 50, BurstSigma: 0.1,
		NoSIMD: map[workload.CPUFamily]float64{workload.Intel: 0, workload.AMD: 0},
	}
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		o = mustRun(b, core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: wl, Kind: core.KindFV,
			SpendAging: true, Instructions: 100_000_000, Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(float64(o.Run.DeadlineFires), "deadline-fires")
}

// BenchmarkFigure7 generates the VLC AES trace and its gap statistics.
func BenchmarkFigure7(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		tr, err := workload.VLC().GenerateTrace(benchInstrNet, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		_ = tr.GapHistogram()
		events = len(tr.Events)
	}
	b.ReportMetric(float64(events), "aes-events")
}

// probe benches: the §5.2 transition measurements (Figs 8-11).
func benchProbe(b *testing.B, chip dvfs.Chip, from, to dvfs.PState, interval units.Second) {
	norm := func() float64 { return 0 }
	var n int
	for i := 0; i < b.N; i++ {
		n = len(dvfs.ProbeTransition(chip.Transition, from, to, norm, interval))
	}
	b.ReportMetric(float64(n), "samples")
}

func BenchmarkFigure8(b *testing.B) {
	chip := dvfs.IntelI9_9900K()
	s, _ := chip.Vendor.StateAt(47)
	from := dvfs.PState{Ratio: s.Ratio, F: s.F, V: s.V + units.MilliVolts(-97)}
	benchProbe(b, chip, from, s, units.Microseconds(5))
}

func BenchmarkFigure9(b *testing.B) {
	chip := dvfs.IntelI9_9900K()
	hi, _ := chip.Vendor.StateAt(47)
	lo, _ := chip.Vendor.StateAt(40)
	benchProbe(b, chip, dvfs.PState{Ratio: hi.Ratio, F: hi.F, V: hi.V},
		dvfs.PState{Ratio: lo.Ratio, F: lo.F, V: hi.V}, units.Microseconds(1))
}

func BenchmarkFigure10(b *testing.B) {
	chip := dvfs.AMDRyzen7700X()
	hi, _ := chip.Vendor.StateAt(45)
	lo, _ := chip.Vendor.StateAt(25)
	benchProbe(b, chip, dvfs.PState{Ratio: hi.Ratio, F: hi.F, V: hi.V},
		dvfs.PState{Ratio: lo.Ratio, F: lo.F, V: hi.V}, units.Microseconds(10))
}

func BenchmarkFigure11(b *testing.B) {
	chip := dvfs.XeonSilver4208()
	lo, _ := chip.Vendor.StateAt(21)
	hi, _ := chip.Vendor.StateAt(30)
	benchProbe(b, chip, lo, hi, units.Microseconds(5))
}

// BenchmarkExceptionDelay exercises the §5.3 trap path: a stream whose
// every faultable event traps and is emulated; the reported metric is the
// simulated per-trap cost (#DO entry + emulation call + work), which must
// sit just above the configured 0.77 µs call delay.
func BenchmarkExceptionDelay(b *testing.B) {
	const traps = 2000
	tr := &trace.Trace{Name: "traps", Total: 100_000_000, IPC: 2}
	for i := uint64(0); i < traps; i++ {
		tr.Events = append(tr.Events, trace.Event{Index: (i + 1) * 40_000, Op: isa.OpAESENC})
	}
	empty := &trace.Trace{Name: "empty", Total: tr.Total, IPC: tr.IPC}
	var perTrap float64
	for i := 0; i < b.N; i++ {
		withTraps := ablationMachine(b, tr, nil, strategy.Emulation{})
		baseline := ablationMachine(b, empty, nil, strategy.Emulation{})
		perTrap = float64(withTraps.Duration-baseline.Duration) / traps * 1e6
	}
	b.ReportMetric(perTrap, "us-per-trap")
}

// BenchmarkFigure13 derives the modified-IMUL curve from the vendor curve.
func BenchmarkFigure13(b *testing.B) {
	vendor := dvfs.IntelI9_9900K().Vendor
	var v units.Volt
	for i := 0; i < b.N; i++ {
		mod := guardband.HardenedIMULCurve(vendor)
		v = mod.Top().V
	}
	b.ReportMetric((vendor.Top().V - v).MilliVolts(), "top-gap-mV")
}

// BenchmarkAgingGuardband computes the §5.6 guardband.
func BenchmarkAgingGuardband(b *testing.B) {
	curve := dvfs.IntelI9_9900K().Vendor
	var v units.Volt
	for i := 0; i < b.N; i++ {
		v = guardband.AgingGuardbandFor(curve)
	}
	b.ReportMetric(v.MilliVolts(), "guardband-mV")
}

// BenchmarkTable3 evaluates the temperature guardband model.
func BenchmarkTable3(b *testing.B) {
	var v units.Volt
	for i := 0; i < b.N; i++ {
		v = guardband.TempGuardbandFor(50, 88)
	}
	b.ReportMetric(-v.MilliVolts(), "temp-guardband-mV")
}

// BenchmarkTable4 aggregates the noSIMD impact table.
func BenchmarkTable4(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = workload.SuiteMeanNoSIMD(workload.SPECfp, workload.Intel)
	}
	b.ReportMetric(mean*100, "fprate-noSIMD-%")
}

// BenchmarkFigure14 runs the out-of-order IMUL-latency study for the
// worst-case benchmark (525.x264, latency 4).
func BenchmarkFigure14(b *testing.B) {
	mix := mustBench(b, "525.x264").Mix()
	cfg := uarch.DefaultConfig()
	var s float64
	for i := 0; i < b.N; i++ {
		var err error
		s, err = uarch.Slowdown(cfg, mix, 200_000, uint64(i+1), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s*100, "x264-slowdown-%")
}

// BenchmarkTable6 runs the flagship cell: 𝒞∞ fV at −97 mV on 557.xz.
func BenchmarkTable6(b *testing.B) {
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		o = mustRun(b, core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, "557.xz"),
			Kind: core.KindFV, SpendAging: true, Instructions: benchInstr,
			Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(o.Efficiency*100, "eff-gain-%")
	b.ReportMetric(o.EfficientShare*100, "E-share-%")
}

// BenchmarkTable6Emulation runs the emulation contrast cell (nginx on 𝒜).
func BenchmarkTable6Emulation(b *testing.B) {
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		o = mustRun(b, core.Scenario{
			Chip: dvfs.IntelI9_9900K(), Bench: workload.Nginx(),
			Kind: core.KindEmul, SpendAging: true, Instructions: benchInstrNet,
			Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(o.Change.Perf*100, "perf-%")
}

// BenchmarkTable7 evaluates one parameter setting of the sweep.
func BenchmarkTable7(b *testing.B) {
	p := strategy.ParamsAC()
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		pp := p
		o = mustRun(b, core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, "502.gcc"),
			Kind: core.KindFV, SpendAging: true, Instructions: benchInstr,
			Params: &pp, Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(o.Efficiency*100, "eff-gain-%")
}

// BenchmarkTable8 compares noSIMD vs SUIT for one benchmark (508.namd,
// the worst case for recompilation).
func BenchmarkTable8(b *testing.B) {
	var suitPerf, nsPerf float64
	for i := 0; i < b.N; i++ {
		outs := mustRunAll(b,
			core.Scenario{
				Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, "508.namd"),
				Kind: core.KindFV, SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1)},
			core.Scenario{
				Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, "508.namd"),
				Kind: core.KindNoSIMD, SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1)})
		suitPerf, nsPerf = outs[0].Change.Perf, outs[1].Change.Perf
	}
	b.ReportMetric((suitPerf-nsPerf)*100, "suit-advantage-%")
}

// BenchmarkFigure16 runs one per-benchmark cell of Fig 16.
func BenchmarkFigure16(b *testing.B) {
	var o core.Outcome
	for i := 0; i < b.N; i++ {
		o = mustRun(b, core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, "523.xalancbmk"),
			Kind: core.KindFV, SpendAging: true, Instructions: benchInstr,
			Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(o.Efficiency*100, "eff-gain-%")
}

// BenchmarkSecurity runs the three-way fault-attack comparison (§6.9).
func BenchmarkSecurity(b *testing.B) {
	var rep security.AttackReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = security.RunAttack(dvfs.IntelI9_9900K(), units.MilliVolts(-97), uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Unsafe.Faults), "unsafe-faults")
	b.ReportMetric(float64(rep.SUIT.Faults), "suit-faults")
}

// --- Ablation benches (DESIGN.md "design choices worth ablating") ---

// ablationMachine builds a raw machine for ablation experiments.
func ablationMachine(b *testing.B, tr *trace.Trace, mod func(*cpu.Config), strat cpu.Strategy) cpu.Result {
	b.Helper()
	gb := guardband.Default()
	chip := dvfs.XeonSilver4208()
	cfg := cpu.Config{
		Chip:           chip,
		Traces:         []*trace.Trace{tr},
		Offset:         gb.EfficientOffset(isa.FaultableMask, true, true),
		Faults:         gb,
		HardenedIMUL:   true,
		ExceptionDelay: chip.ExceptionDelay,
		Emul:           emul.NewCostModel(chip.EmulCallDelay),
		Seed:           1,
	}
	if mod != nil {
		mod(&cfg)
	}
	m, err := cpu.New(cfg, strat)
	if err != nil {
		b.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationDeadline contrasts the resetting deadline (§4.1)
// against a fixed-duration switchback: with bursts slightly longer than
// the deadline, the non-resetting timer switches back mid-burst and traps
// again immediately.
func BenchmarkAblationDeadline(b *testing.B) {
	wl := workload.VLC()
	var with, without cpu.Result
	for i := 0; i < b.N; i++ {
		tr, err := wl.GenerateTrace(benchInstrNet, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		strat := strategy.FV{P: strategy.ParamsAC()}
		with = ablationMachine(b, tr, nil, strat)
		without = ablationMachine(b, tr, func(c *cpu.Config) { c.NoDeadlineReset = true }, strat)
	}
	b.ReportMetric(float64(with.Exceptions), "exceptions-resetting")
	b.ReportMetric(float64(without.Exceptions), "exceptions-fixed")
}

// BenchmarkAblationThrashing contrasts thrashing prevention on/off for
// the borderline workload 527.cam4 (gaps straddle the deadline).
func BenchmarkAblationThrashing(b *testing.B) {
	wl := mustBench(b, "527.cam4")
	var on, off core.Outcome
	for i := 0; i < b.N; i++ {
		pOn := strategy.ParamsAC()
		pOff := pOn
		pOff.DeadlineFactor = 1 // multiplying by 1 disables the extension
		outs := mustRunAll(b,
			core.Scenario{Chip: dvfs.XeonSilver4208(), Bench: wl,
				Kind: core.KindFV, SpendAging: true, Instructions: benchInstr,
				Params: &pOn, Seed: uint64(i + 1)},
			core.Scenario{Chip: dvfs.XeonSilver4208(), Bench: wl,
				Kind: core.KindFV, SpendAging: true, Instructions: benchInstr,
				Params: &pOff, Seed: uint64(i + 1)})
		on, off = outs[0], outs[1]
	}
	b.ReportMetric(on.Change.Perf*100, "perf-with-%")
	b.ReportMetric(off.Change.Perf*100, "perf-without-%")
}

// BenchmarkAblationStrategy contrasts fV against the single-knob
// strategies on a mid-density workload (§4.3's comparison).
func BenchmarkAblationStrategy(b *testing.B) {
	wl := mustBench(b, "502.gcc")
	var fv, f, v core.Outcome
	for i := 0; i < b.N; i++ {
		sc := func(k core.StrategyKind) core.Scenario {
			return core.Scenario{Chip: dvfs.XeonSilver4208(), Bench: wl,
				Kind: k, SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1)}
		}
		outs := mustRunAll(b, sc(core.KindFV), sc(core.KindFreq), sc(core.KindVolt))
		fv, f, v = outs[0], outs[1], outs[2]
	}
	b.ReportMetric(fv.Efficiency*100, "fV-eff-%")
	b.ReportMetric(f.Efficiency*100, "f-eff-%")
	b.ReportMetric(v.Efficiency*100, "V-eff-%")
}

// BenchmarkAblationDomains contrasts single-domain (𝒜) against per-core
// (𝒞) switching with four co-running copies.
func BenchmarkAblationDomains(b *testing.B) {
	wl := mustBench(b, "502.gcc")
	var single, perCore core.Outcome
	for i := 0; i < b.N; i++ {
		outs := mustRunAll(b,
			core.Scenario{Chip: dvfs.IntelI9_9900K(), Bench: wl,
				Kind: core.KindFV, Cores: 4, SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1)},
			core.Scenario{Chip: dvfs.XeonSilver4208(), Bench: wl,
				Kind: core.KindFV, Cores: 4, SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1)})
		single, perCore = outs[0], outs[1]
	}
	b.ReportMetric(single.Change.Perf*100, "single-domain-perf-%")
	b.ReportMetric(perCore.Change.Perf*100, "per-core-perf-%")
}

// BenchmarkAblationIMUL contrasts the hardened IMUL (§4.2) against
// trapping IMUL like the rest of the faultable set: with an IMUL every
// ~560 instructions, trapping pins the CPU to the conservative curve.
func BenchmarkAblationIMUL(b *testing.B) {
	// A workload dominated by IMUL (x264-like hot loops).
	spec := trace.Spec{
		Name: "imul-hot", Total: 50_000_000, IPC: 2,
		Sources: []trace.Source{trace.Periodic{Op: isa.OpIMUL, Interval: 560}},
	}
	var hardened, trapping cpu.Result
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i + 1)
		tr, err := trace.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		strat := strategy.FV{P: strategy.ParamsAC()}
		hardened = ablationMachine(b, tr, nil, strat)
		trapping = ablationMachine(b, tr, func(c *cpu.Config) {
			c.TrapIMUL = true
			c.HardenedIMUL = false
		}, strat)
	}
	b.ReportMetric(hardened.EfficientShare()*100, "hardened-E-share-%")
	b.ReportMetric(trapping.EfficientShare()*100, "trapping-E-share-%")
	if math.IsNaN(float64(hardened.Duration)) {
		b.Fatal("NaN duration")
	}
}

// BenchmarkBaselines runs the §7 related-work comparison (Razor,
// ECC-guided, workload-aware undervolting vs SUIT).
func BenchmarkBaselines(b *testing.B) {
	gb := guardband.Default()
	wl := mustBench(b, "557.xz")
	tr, err := wl.GenerateTrace(10_000_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	var rows []baselines.Approach
	for i := 0; i < b.N; i++ {
		rows, err = baselines.Compare(dvfs.IntelI9_9900K(), gb, tr, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "SUIT (fV)" {
			b.ReportMetric(r.Eff*100, "suit-eff-%")
		}
	}
}

// BenchmarkScheduling runs the §7 SUIT-aware placement comparison.
func BenchmarkScheduling(b *testing.B) {
	var tasks []workload.Benchmark
	for _, n := range []string{"557.xz", "505.mcf", "520.omnetpp", "521.wrf"} {
		tasks = append(tasks, mustBench(b, n))
	}
	cfg := sched.Config{
		Chip: dvfs.IntelI9_9900K(), Clusters: 2, CoresPerCluster: 2,
		Tasks: tasks, Instructions: 100_000_000, SpendAging: true, Seed: 1,
	}
	var spread, packed sched.Result
	for i := 0; i < b.N; i++ {
		var err error
		cfg.Seed = uint64(i + 1)
		spread, packed, err = sched.Compare(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(spread.Eff*100, "spread-eff-%")
	b.ReportMetric(packed.Eff*100, "packed-eff-%")
}

// BenchmarkAblationAdaptiveDeadline compares the self-tuning deadline
// against the fixed Table 7 parameters on a sparse and a borderline
// workload.
func BenchmarkAblationAdaptiveDeadline(b *testing.B) {
	var fixedXZ, adaptXZ, fixedCam, adaptCam core.Outcome
	for i := 0; i < b.N; i++ {
		sc := func(name string, kind core.StrategyKind) core.Scenario {
			return core.Scenario{
				Chip: dvfs.XeonSilver4208(), Bench: mustBench(b, name), Kind: kind,
				SpendAging: true, Instructions: benchInstr, Seed: uint64(i + 1),
			}
		}
		outs := mustRunAll(b,
			sc("557.xz", core.KindFV), sc("557.xz", core.KindAdaptive),
			sc("527.cam4", core.KindFV), sc("527.cam4", core.KindAdaptive))
		fixedXZ, adaptXZ, fixedCam, adaptCam = outs[0], outs[1], outs[2], outs[3]
	}
	b.ReportMetric(fixedXZ.Efficiency*100, "xz-fixed-eff-%")
	b.ReportMetric(adaptXZ.Efficiency*100, "xz-adaptive-eff-%")
	b.ReportMetric(fixedCam.Efficiency*100, "cam4-fixed-eff-%")
	b.ReportMetric(adaptCam.Efficiency*100, "cam4-adaptive-eff-%")
}
