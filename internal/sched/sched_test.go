package sched

import (
	"testing"

	"suit/internal/dvfs"
	"suit/internal/workload"
)

func tasks(t *testing.T) []workload.Benchmark {
	t.Helper()
	// Order matters for the Spread policy: sparse, sparse, dense, dense —
	// round-robin then lands one conservative-bound task on each cluster.
	var out []workload.Benchmark
	for _, n := range []string{"557.xz", "505.mcf", "520.omnetpp", "521.wrf"} {
		b, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("workload %s missing", n)
		}
		out = append(out, b)
	}
	return out
}

func testCfg(t *testing.T) Config {
	return Config{
		Chip:            dvfs.IntelI9_9900K(), // 8 cores → 2 clusters of 2
		Clusters:        2,
		CoresPerCluster: 2,
		Tasks:           tasks(t),
		Instructions:    100_000_000,
		SpendAging:      true,
		Seed:            1,
	}
}

func TestFaultableDensityOrdering(t *testing.T) {
	xz, _ := workload.ByName("557.xz")
	omnetpp, _ := workload.ByName("520.omnetpp")
	if FaultableDensity(omnetpp) <= FaultableDensity(xz) {
		t.Error("omnetpp must be denser than xz")
	}
	if FaultableDensity(workload.Benchmark{}) != 0 {
		t.Error("empty benchmark has nonzero density")
	}
}

func TestSpreadRoundRobin(t *testing.T) {
	ts := tasks(t)
	a := Spread(ts, 2)
	want := Assignment{0, 1, 0, 1}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("Spread[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	if a.Clusters() != 2 {
		t.Errorf("Clusters() = %d", a.Clusters())
	}
}

func TestPackByDensityGroupsDenseTasks(t *testing.T) {
	ts := tasks(t) // xz (sparse), mcf (sparse), omnetpp (dense), wrf (dense)
	a := PackByDensity(ts, 2, 2)
	if a[2] != a[3] {
		t.Errorf("dense tasks split across clusters: %v", a)
	}
	if a[0] != a[1] {
		t.Errorf("sparse tasks split across clusters: %v", a)
	}
	if a[0] == a[2] {
		t.Errorf("sparse and dense share a cluster: %v", a)
	}
	if err := a.Validate(2, 2); err != nil {
		t.Error(err)
	}
}

func TestAssignmentValidate(t *testing.T) {
	if err := (Assignment{0, 1, 0, 1}).Validate(2, 2); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := (Assignment{0, 0, 0}).Validate(2, 2); err == nil {
		t.Error("over-capacity assignment accepted")
	}
	if err := (Assignment{0, 5}).Validate(2, 2); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	c := testCfg(t)
	if _, err := Evaluate(c, Assignment{0}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := c
	bad.Clusters = 0
	if _, err := Evaluate(bad, Spread(c.Tasks, 1)); err == nil {
		t.Error("zero clusters accepted")
	}
	big := c
	big.Clusters = 5
	big.CoresPerCluster = 2
	if _, err := Evaluate(big, Spread(c.Tasks, 5)); err == nil {
		t.Error("cluster grid beyond the chip accepted")
	}
	empty := c
	empty.Tasks = nil
	if _, err := Evaluate(empty, Assignment{}); err == nil {
		t.Error("empty task set accepted")
	}
}

func TestPackingBeatsSpreading(t *testing.T) {
	// The §7 scheduling claim: packing the conservative-bound tasks onto
	// one cluster leaves the other cluster on the efficient curve, which
	// spreading cannot.
	spread, packed, err := Compare(testCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if packed.Eff <= spread.Eff {
		t.Errorf("packing eff %v not above spreading %v", packed.Eff, spread.Eff)
	}
	// With a dense task on each cluster, spreading gains almost nothing.
	if spread.Eff > packed.Eff/2 {
		t.Errorf("spreading eff %v suspiciously close to packing %v", spread.Eff, packed.Eff)
	}
	if packed.Exceptions == 0 || len(packed.PerTask) != 4 {
		t.Errorf("packed result incomplete: %+v", packed)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	c := testCfg(t)
	a := PackByDensity(c.Tasks, 2, 2)
	r1, err := Evaluate(c, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(c, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Eff != r2.Eff || r1.Exceptions != r2.Exceptions {
		t.Error("evaluation not deterministic")
	}
}
