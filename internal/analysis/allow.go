package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// A well-formed suppression names one analyzer and gives a non-empty
// reason; it silences that analyzer's diagnostics on the same line or
// on the line directly below (so it works both trailing a statement and
// standing on its own line above one). The reason ends at the first
// "//" so a trailing comment does not count as explanation.
//
// Suppressions are themselves checked: a missing reason or an unknown
// analyzer name is reported as a diagnostic (analyzer "lintallow") and
// the suppression does not take effect.
const AllowPrefix = "lint:allow"

// An Allow is one well-formed suppression comment.
type Allow struct {
	Pos      token.Pos
	Line     int    // line the comment starts on
	File     string // filename the comment appears in
	Analyzer string
	Reason   string

	// Trailing records the comment's form: true when code ends on the
	// comment's own line (the comment trails a statement), false when
	// the comment stands alone. A trailing allow covers its own line
	// only; a standalone allow covers the line directly below only.
	// Matching both at once — the historical behavior — let a trailing
	// allow silently swallow the next line's finding too.
	Trailing bool
}

// codeEndLines records, per file, every line on which a non-comment
// syntax node ends. Line comments always sort after the code on their
// line, so "code ends on the comment's line" is exactly the trailing
// form.
func codeEndLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// CollectAllows extracts every //lint:allow comment from files.
// Malformed suppressions are returned as diagnostics; only well-formed
// ones participate in Suppress.
func CollectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) ([]Allow, []Diagnostic) {
	var allows []Allow
	var bad []Diagnostic
	for _, f := range files {
		ends := codeEndLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, " ")
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				// A nested comment is not a reason.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				pos := fset.Position(c.Pos())
				switch {
				case name == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
					})
				case !known[name]:
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow names unknown analyzer " + name,
					})
				case reason == "":
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintallow",
						Message:  "lint:allow " + name + " is missing a reason; unexplained suppressions are not honored",
					})
				default:
					allows = append(allows, Allow{
						Pos:      c.Pos(),
						Line:     pos.Line,
						File:     pos.Filename,
						Analyzer: name,
						Reason:   reason,
						Trailing: ends[pos.Line],
					})
				}
			}
		}
	}
	return allows, bad
}

// matches reports whether the allow covers a position: same analyzer,
// same file, and — depending on form — the comment's own line (trailing)
// or exactly the line below (standalone).
func (a *Allow) matches(analyzer string, pos token.Position) bool {
	if a.Analyzer != analyzer || a.File != pos.Filename {
		return false
	}
	if a.Trailing {
		return a.Line == pos.Line
	}
	return a.Line+1 == pos.Line
}

// Suppress drops diagnostics matched by a suppression. It is the
// untracked form used by drivers that do not report stale allows;
// Session.RunPackage goes through an allowTracker instead so usage is
// recorded.
func Suppress(fset *token.FileSet, diags []Diagnostic, allows []Allow) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for i := range allows {
			if allows[i].matches(d.Analyzer, pos) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// An allowTracker wraps a package's suppressions with per-allow usage
// accounting, feeding stale-suppression detection. An allow counts as
// used when it drops a diagnostic OR when an analyzer consults it via
// Pass.Allowed while computing facts (a suppression that blocks a fact
// export is load-bearing even though no diagnostic ever surfaces).
type allowTracker struct {
	allows []Allow
	used   []bool
}

func newAllowTracker(allows []Allow) *allowTracker {
	return &allowTracker{allows: allows, used: make([]bool, len(allows))}
}

// match reports whether any allow for analyzer covers pos, marking
// every covering allow used.
func (t *allowTracker) match(analyzer string, pos token.Position) bool {
	ok := false
	for i := range t.allows {
		if t.allows[i].matches(analyzer, pos) {
			t.used[i] = true
			ok = true
		}
	}
	return ok
}

// suppress is Suppress with usage tracking.
func (t *allowTracker) suppress(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	if len(t.allows) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !t.match(d.Analyzer, fset.Position(d.Pos)) {
			kept = append(kept, d)
		}
	}
	return kept
}
