package cpu

// This file implements the indexed event scheduler that replaced the
// per-event linear scan of nextEvent (kept as nextEventLinear, the
// test-only reference implementation in run.go).
//
// Design. Every potential event source is a *slot* with a fixed
// identity:
//
//   - one slot per core (its next arrival or unblock),
//   - four slots per domain (stall start, frequency apply, transition
//     end, deadline),
//   - one slot per live entry of m.scheduled (deferred handler effects).
//
// A binary heap orders the slots by (time, rank), where rank encodes the
// linear scan's deterministic tie-break exactly: scheduled actions beat
// domains beat cores, and within each class the ascending index wins;
// within a domain, stall start precedes frequency-apply/transition-end
// (mutually exclusive) precedes deadline. Because every live slot has a
// unique rank, the heap order at equal times is total and matches the
// scan's first-considered-wins rule.
//
// Byte-identity contract. The linear scan recomputed every candidate
// time each iteration; a core's arrival estimate drifts by ulps as
// c.pos is advanced segment by segment, and the *fired* time is the one
// computed from the machine state of the final iteration. The heap
// therefore stores cached times only to *order* the slots; popEvent
// re-evaluates the root slot against current machine state and fires
// with the freshly computed time — exactly the value the final linear
// scan would have produced. A root whose cached time is stale is
// re-keyed and re-sifted; a root whose slot is no longer due (e.g. a
// core whose domain began stalling, or a stall boundary overtaken by
// the clock at an equal-time tie) is lazily discarded, which also
// matches the scan: such candidates simply vanished from its view.
//
// Mutation points re-sync the affected slots (see the sync* methods and
// their call sites in run.go / controller.go / msrfront.go); the
// invariant — every slot the linear scan would consider is present in
// the heap, possibly with a stale cached time — is checked by
// auditQueue under the test-only m.audit flag.

import (
	"fmt"

	"suit/internal/isa"
	"suit/internal/msr"
	"suit/internal/units"
)

// Domain sub-slot indices.
const (
	subStall    = 0
	subFreq     = 1 // frequency apply
	subEnd      = 2 // transition end (mutually exclusive with subFreq)
	subDeadline = 3
)

// rank packs the linear scan's tie-break into one comparable word:
// class (scheduled < domain < core) in the high bits, the slot's index
// in the middle, and the intra-domain event order in the low bits.
func schedRank(i int) uint64 { return uint64(i) << 8 }
func domainRank(d, sub int) uint64 {
	minor := uint64(0)
	switch sub {
	case subFreq, subEnd: // mutually exclusive, same scan position
		minor = 1
	case subDeadline:
		minor = 2
	}
	return 1<<40 | uint64(d)<<8 | minor
}
func coreRank(id int) uint64 { return 2<<40 | uint64(id)<<8 }

// eqNode is one heap entry. slot >= 0 addresses a fixed slot (cores,
// then domain sub-slots); slot < 0 addresses scheduled action -(slot+1).
type eqNode struct {
	t    units.Second
	rank uint64
	slot int32
}

// eventQueue is an indexed binary min-heap over the event slots.
type eventQueue struct {
	nodes []eqNode
	pos   []int32 // fixed slot -> index into nodes, -1 when absent
	spos  []int32 // scheduled slot -> index into nodes, parallel to m.scheduled
}

// init sizes the fixed-slot table and empties the heap. Backing arrays
// are retained so a Reset+Run cycle does not allocate.
func (q *eventQueue) init(fixedSlots int) {
	q.nodes = q.nodes[:0]
	if cap(q.pos) < fixedSlots {
		q.pos = make([]int32, fixedSlots)
	}
	q.pos = q.pos[:fixedSlots]
	for i := range q.pos {
		q.pos[i] = -1
	}
	q.spos = q.spos[:0]
}

func (q *eventQueue) posPtr(slot int32) *int32 {
	if slot >= 0 {
		return &q.pos[slot]
	}
	return &q.spos[-slot-1]
}

// set inserts or re-keys a slot.
//
//suit:hotpath
func (q *eventQueue) set(slot int32, t units.Second, rank uint64) {
	p := q.posPtr(slot)
	if *p >= 0 {
		i := int(*p)
		if q.nodes[i].t == t {
			return
		}
		q.nodes[i].t = t
		q.fix(i)
		return
	}
	q.nodes = append(q.nodes, eqNode{t: t, rank: rank, slot: slot}) //lint:allow allocfree heap reaches its full slot capacity during boot; Reset retains the backing array, steady-state set re-keys in place
	i := len(q.nodes) - 1
	*p = int32(i)
	q.up(i)
}

// clear removes a slot if present.
//
//suit:hotpath
func (q *eventQueue) clear(slot int32) {
	p := q.posPtr(slot)
	if *p < 0 {
		return
	}
	q.removeAt(int(*p))
}

func (q *eventQueue) removeAt(i int) {
	last := len(q.nodes) - 1
	q.swap(i, last)
	removed := q.nodes[last]
	q.nodes = q.nodes[:last]
	*q.posPtr(removed.slot) = -1
	if i < last {
		q.fix(i)
	}
}

func (q *eventQueue) less(i, j int) bool {
	a, b := &q.nodes[i], &q.nodes[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.rank < b.rank
}

func (q *eventQueue) swap(i, j int) {
	q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i]
	*q.posPtr(q.nodes[i].slot) = int32(i)
	*q.posPtr(q.nodes[j].slot) = int32(j)
}

func (q *eventQueue) fix(i int) {
	if !q.down(i) {
		q.up(i)
	}
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) bool {
	moved := false
	for {
		l := 2*i + 1
		if l >= len(q.nodes) {
			return moved
		}
		s := l
		if r := l + 1; r < len(q.nodes) && q.less(r, l) {
			s = r
		}
		if !q.less(s, i) {
			return moved
		}
		q.swap(s, i)
		i = s
		moved = true
	}
}

// --- Slot evaluation (shared by popEvent and the sync methods) ---

// evalDomainSub mirrors the linear scan's per-domain candidate logic for
// one sub-slot, evaluated against current machine state.
func (m *Machine) evalDomainSub(d *domain, sub int) (units.Second, evKind, bool) {
	p := d.pending
	switch sub {
	case subStall:
		if p != nil && p.freqApply > 0 && p.freqTarget != 0 &&
			p.stallFrom >= 0 && p.stallFrom > m.now {
			return p.stallFrom, evStallStart, true
		}
	case subFreq:
		if p != nil && p.freqApply > 0 && p.freqTarget != 0 {
			return p.freqApply, evFreqApply, true
		}
	case subEnd:
		if p != nil && !(p.freqApply > 0 && p.freqTarget != 0) {
			return p.end, evTransitionEnd, true
		}
	case subDeadline:
		if d.deadlineAt > 0 {
			return d.deadlineAt, evDeadline, true
		}
	}
	return 0, evNone, false
}

// evalCore mirrors the linear scan's per-core candidate logic, evaluated
// against current machine state. The arrival time is recomputed from the
// live (m.now, c.pos) pair, reproducing the scan's final-iteration
// floating-point value bit for bit.
func (m *Machine) evalCore(c *core) (units.Second, evKind, bool) {
	if c.finished {
		return 0, evNone, false
	}
	if c.blockedUntil > m.now {
		return c.blockedUntil, evCoreUnblock, true
	}
	d := m.domainOf(c.id)
	if d.stalledAt(m.now) {
		// The core resumes at the frequency application; that event has
		// its own slot.
		return 0, evNone, false
	}
	nextIdx := c.tr.Total
	if c.idx < len(c.tr.Events) {
		nextIdx = c.tr.Events[c.idx].Index
	}
	remaining := float64(nextIdx) - c.pos
	if remaining <= 0 {
		return m.now, evCoreArrive, true
	}
	rate := c.effRate(d.freq) // instructions/second
	return m.now + units.Second(remaining/rate), evCoreArrive, true
}

// evalSlot evaluates any slot id, returning (time, kind, who, live).
func (m *Machine) evalSlot(slot int32) (units.Second, evKind, int, bool) {
	if slot < 0 {
		i := int(-slot - 1)
		a := &m.scheduled[i]
		if a.done {
			return 0, evNone, -1, false
		}
		return a.t, evSched, i, true
	}
	s := int(slot)
	if s < len(m.cores) {
		t, k, ok := m.evalCore(m.cores[s])
		return t, k, s, ok
	}
	s -= len(m.cores)
	t, k, ok := m.evalDomainSub(m.domains[s/4], s%4)
	return t, k, s / 4, ok
}

func (m *Machine) coreSlot(c *core) int32 { return int32(c.id) }
func (m *Machine) domainSlot(d *domain, sub int) int32 {
	return int32(len(m.cores) + 4*d.id + sub)
}

// --- Slot synchronization (called from every event-affecting mutation) ---

func (m *Machine) syncCore(c *core) {
	if t, _, ok := m.evalCore(c); ok {
		m.eq.set(m.coreSlot(c), t, coreRank(c.id))
	} else {
		m.eq.clear(m.coreSlot(c))
	}
}

func (m *Machine) syncDomainCores(d *domain) {
	for _, c := range d.cores {
		m.syncCore(c)
	}
}

func (m *Machine) syncDomainSub(d *domain, sub int) {
	if t, _, ok := m.evalDomainSub(d, sub); ok {
		m.eq.set(m.domainSlot(d, sub), t, domainRank(d.id, sub))
	} else {
		m.eq.clear(m.domainSlot(d, sub))
	}
}

// syncTransition refreshes the three transition sub-slots of d.
func (m *Machine) syncTransition(d *domain) {
	m.syncDomainSub(d, subStall)
	m.syncDomainSub(d, subFreq)
	m.syncDomainSub(d, subEnd)
}

func (m *Machine) syncDeadline(d *domain) {
	m.syncDomainSub(d, subDeadline)
}

// syncAll rebuilds the queue from scratch; Run calls it once after Init
// so that slots stale-written during boot are discarded wholesale.
// m.scheduled must be empty (Run drains Init-time actions first).
func (m *Machine) syncAll() {
	m.eq.init(len(m.cores) + 4*len(m.domains))
	for _, d := range m.domains {
		m.syncTransition(d)
		m.syncDeadline(d)
	}
	for _, c := range m.cores {
		m.syncCore(c)
	}
}

// --- Scheduled-action queue (tombstoned; O(1) removal) ---

func (m *Machine) pushSched(a schedAction) {
	i := len(m.scheduled)
	m.scheduled = append(m.scheduled, a)
	m.eq.spos = append(m.eq.spos, -1)
	m.schedLive++
	m.eq.set(int32(-i-1), a.t, schedRank(i))
}

// consumeSched tombstones entry i; the backing slice resets only once
// every live entry is consumed, so surviving indices — and with them the
// insertion-order tie-break — stay stable.
func (m *Machine) consumeSched(i int) {
	m.scheduled[i].done = true
	m.eq.clear(int32(-i - 1))
	m.schedLive--
	if m.schedLive == 0 {
		m.scheduled = m.scheduled[:0]
		m.eq.spos = m.eq.spos[:0]
	}
}

// applySched performs a handler effect. The four action kinds replace
// the closures the controller used to allocate per deferred effect.
func (m *Machine) applySched(a *schedAction) {
	d := a.d
	switch a.kind {
	case schedDisable:
		d.msrs.Poke(msr.SUITDisable, uint64(isa.FaultableMask))
		d.disabled = true
	case schedEnable:
		d.msrs.Poke(msr.SUITDisable, 0)
		d.disabled = false
	case schedArmDeadline:
		d.deadlineDur = a.dur
		d.deadlineAt = a.expiry
		d.msrs.Poke(msr.SUITDeadline, uint64(a.dur.Microseconds()*1000)) // ns ticks
		m.syncDeadline(d)
	case schedDisarmDeadline:
		d.deadlineAt = 0
		d.msrs.Poke(msr.SUITDeadline, 0)
		m.syncDeadline(d)
	}
}

// --- Event extraction ---

// popEvent returns the earliest pending event, removing it from the
// queue. Lazy invalidation: the root is re-evaluated against current
// machine state; vanished slots are dropped, stale cached times are
// re-keyed and the heap re-settled. State is not mutated here, so each
// slot is re-keyed at most once per call and the loop terminates.
//
//suit:hotpath
func (m *Machine) popEvent() (units.Second, evKind, int) {
	for {
		if len(m.eq.nodes) == 0 {
			return 0, evNone, -1
		}
		root := m.eq.nodes[0]
		t, kind, who, ok := m.evalSlot(root.slot)
		if !ok {
			m.eq.removeAt(0)
			continue
		}
		if t != root.t {
			m.eq.nodes[0].t = t
			m.eq.fix(0)
			continue
		}
		m.eq.removeAt(0)
		return t, kind, who
	}
}

// auditQueue verifies the sync invariant: every slot the linear scan
// would consider right now is present in the heap. (Cached times may be
// stale and dead slots may linger — both are resolved lazily at pop.)
// Enabled by the test-only m.audit flag.
func (m *Machine) auditQueue() error {
	for i := range m.scheduled {
		if m.scheduled[i].done {
			continue
		}
		if m.eq.spos[i] < 0 {
			return fmt.Errorf("cpu: audit: live scheduled action %d missing from event queue", i) //lint:allow allocfree audit failure path; m.audit is a test-only flag, never set in sweeps
		}
	}
	for _, d := range m.domains {
		for sub := subStall; sub <= subDeadline; sub++ {
			if _, _, ok := m.evalDomainSub(d, sub); ok && m.eq.pos[m.domainSlot(d, sub)] < 0 {
				return fmt.Errorf("cpu: audit: due domain %d sub-slot %d missing from event queue", d.id, sub) //lint:allow allocfree audit failure path; m.audit is a test-only flag, never set in sweeps
			}
		}
	}
	for _, c := range m.cores {
		if _, _, ok := m.evalCore(c); ok && m.eq.pos[m.coreSlot(c)] < 0 {
			return fmt.Errorf("cpu: audit: due core %d missing from event queue", c.id) //lint:allow allocfree audit failure path; m.audit is a test-only flag, never set in sweeps
		}
	}
	return nil
}
