package guardband

import (
	"testing"

	"suit/internal/isa"
	"suit/internal/units"
)

func TestPerCoreModelsValidityAndSpread(t *testing.T) {
	base := Default()
	cores, err := PerCoreModels(base, 8, units.MilliVolts(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 8 {
		t.Fatalf("%d cores", len(cores))
	}
	differ := false
	for i, m := range cores {
		if err := m.Validate(); err != nil {
			t.Errorf("core %d model invalid: %v", i, err)
		}
		if m.Margin(isa.OpAESENC, false) != base.Margin(isa.OpAESENC, false) {
			differ = true
		}
	}
	if !differ {
		t.Error("no per-core variation generated")
	}
	// The base model is untouched.
	if base.Margin(isa.OpAESENC, false) != Default().Margin(isa.OpAESENC, false) {
		t.Error("PerCoreModels mutated the base model")
	}
	// Deterministic per seed.
	again, _ := PerCoreModels(base, 8, units.MilliVolts(8), 1)
	for i := range cores {
		if cores[i].Margin(isa.OpVOR, false) != again[i].Margin(isa.OpVOR, false) {
			t.Fatal("per-core derivation not deterministic")
		}
	}
}

func TestPerCoreModelsValidation(t *testing.T) {
	if _, err := PerCoreModels(Default(), 0, 0, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := PerCoreModels(Default(), 2, units.MilliVolts(-1), 1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestWeakestOffsetGovernsThePackage(t *testing.T) {
	cores, err := PerCoreModels(Default(), 8, units.MilliVolts(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	pkg := WeakestOffset(cores, isa.FaultableMask, true, true)
	// The package offset must be safe on every core: no enabled
	// instruction faults at pkg anywhere.
	for i, m := range cores {
		for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
			if op == isa.OpNop || isa.FaultableMask.Has(op) {
				continue
			}
			if m.Faults(op, pkg, true) {
				t.Errorf("core %d: %v faults at the package offset %v", i, op, pkg)
			}
		}
	}
	// And it must equal some core's own offset (the weakest).
	found := false
	for _, m := range cores {
		if m.EfficientOffset(isa.FaultableMask, true, true) == pkg {
			found = true
		}
	}
	if !found {
		t.Error("package offset matches no core")
	}
	if WeakestOffset(nil, isa.FaultableMask, true, true) != 0 {
		t.Error("empty core list should give 0")
	}
}

func TestPerCoreHeadroom(t *testing.T) {
	cores, err := PerCoreModels(Default(), 8, units.MilliVolts(10), 5)
	if err != nil {
		t.Fatal(err)
	}
	head := PerCoreHeadroom(cores, isa.FaultableMask, true, true)
	if len(head) != 8 {
		t.Fatalf("%d entries", len(head))
	}
	anyPositive := false
	zeroSeen := false
	for i, h := range head {
		if h < -1e-12 {
			t.Errorf("core %d has negative headroom %v", i, h)
		}
		if h > units.MilliVolts(1) {
			anyPositive = true
		}
		if h < units.MilliVolts(0.001) {
			zeroSeen = true
		}
	}
	if !anyPositive {
		t.Error("no core has headroom over the weakest; variation lost")
	}
	if !zeroSeen {
		t.Error("the weakest core itself must have ≈zero headroom")
	}
}
