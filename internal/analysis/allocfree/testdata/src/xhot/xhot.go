// Package xhot is the dependent half of the cross-package fact fixture:
// its hot functions call into package xdep, whose Allocates facts were
// exported by an earlier RunPackage in the same session.
package xhot

import "xdep"

//suit:hotpath
func Step(dst []int) []int {
	dst = xdep.Grow(dst) // want `hot path: calls xdep\.Grow which may allocate \(xdep\.go:8: append may grow the backing array\)`
	xdep.Quiet()
	return dst
}

//suit:hotpath
func StepDeep(dst []int) []int {
	return xdep.Deep(dst) // want `hot path: calls xdep\.Deep which may allocate`
}

//suit:hotpath
func StepAllowed(dst []int) []int {
	return xdep.Grow(dst) //lint:allow allocfree growth amortized across the sweep, measured off the steady state
}
