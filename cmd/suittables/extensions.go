package main

import (
	"fmt"
	"os"

	"suit/internal/baselines"
	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/guardband"
	"suit/internal/report"
	"suit/internal/sched"
	"suit/internal/security"
	"suit/internal/units"
	"suit/internal/workload"
)

// The extension experiments: discussion items of the paper (§7, §8) made
// executable. They are part of the default "all" run but carry their own
// ids for selective execution.

// runCovert quantifies the §8 covert channel.
func runCovert(c cfg, w *os.File) error {
	bits := make([]bool, 32)
	for i := range bits {
		bits[i] = i%3 == 0 || i%7 == 0
	}
	t := report.NewTable("§8 extension. Curve-switching covert channel (i9-9900K, shared domain)",
		"symbol window", "raw rate", "bit errors", "error rate")
	for _, us := range []float64{200, 400, 800} {
		res, err := security.CovertChannel(dvfs.IntelI9_9900K(), bits, units.Microseconds(us), c.seed)
		if err != nil {
			return err
		}
		t.AddRow(units.Microseconds(us).String(),
			fmt.Sprintf("%.1f kbit/s", res.BitsPerSecond/1000),
			fmt.Sprintf("%d/%d", res.BitErrors, len(bits)),
			fmt.Sprintf("%.1f %%", res.ErrorRate()*100))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe sender drags the shared DVFS domain conservative with one trap per")
	fmt.Fprintln(w, "1-bit; the receiver decodes its own throughput dips with clock recovery.")
	return nil
}

// runBaselines prints the §7 related-work comparison.
func runBaselines(c cfg, w *os.File) error {
	gb := guardband.Default()
	xz, _ := workload.ByName("557.xz")
	tr, err := xz.GenerateTrace(20_000_000, c.seed)
	if err != nil {
		return err
	}
	rows, err := baselines.Compare(dvfs.IntelI9_9900K(), gb, tr, c.seed)
	if err != nil {
		return err
	}
	t := report.NewTable("§7 extension. Undervolting approaches compared (i9-9900K)",
		"approach", "offset", "efficiency", "risk")
	for _, r := range rows {
		risk := "none beyond today's CPUs"
		switch {
		case r.FaultsOnUnprofiled:
			risk = "silent faults on unprofiled code"
		case r.SpendsAgingGuardband:
			risk = "consumes the aging guardband"
		}
		t.AddRow(r.Name, r.Offset.String(), report.Pct(r.Eff), risk)
	}
	return t.Render(w)
}

// runSched prints the §7 scheduling experiment.
func runSched(c cfg, w *os.File) error {
	var tasks []workload.Benchmark
	for _, n := range []string{"557.xz", "505.mcf", "520.omnetpp", "521.wrf"} {
		b, ok := workload.ByName(n)
		if !ok {
			return fmt.Errorf("workload %s missing", n)
		}
		tasks = append(tasks, b)
	}
	cfg := sched.Config{
		Chip: dvfs.IntelI9_9900K(), Clusters: 2, CoresPerCluster: 2,
		Tasks: tasks, Instructions: c.netInstr, SpendAging: true, Seed: c.seed,
	}
	spread, packed, err := sched.Compare(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("§7 extension. SUIT-aware placement (2 clusters × 2 cores)",
		"policy", "assignment", "perf", "power", "efficiency")
	t.AddRow("round-robin", fmt.Sprint([]int(spread.Assignment)),
		report.Pct(spread.Change.Perf), report.Pct(spread.Change.Power), report.Pct(spread.Eff))
	t.AddRow("pack by density", fmt.Sprint([]int(packed.Assignment)),
		report.Pct(packed.Change.Perf), report.Pct(packed.Change.Power), report.Pct(packed.Eff))
	return t.Render(w)
}

// runVariance reports mean ± σ over seeds for flagship cells, mirroring
// the paper's (n, σ) annotations.
func runVariance(c cfg, w *os.File) error {
	n := 6
	if c.quick {
		n = 4
	}
	t := report.NewTable(fmt.Sprintf("Run-to-run variance (n = %d seeds)", n),
		"cell", "perf", "power", "efficiency", "E-share")
	pm := func(mean, sigma float64) string {
		return fmt.Sprintf("%+.2f ± %.2f %%", mean*100, sigma*100)
	}
	xz, err := byName("557.xz")
	if err != nil {
		return err
	}
	gcc, err := byName("502.gcc")
	if err != nil {
		return err
	}
	cells := []struct {
		label string
		sc    core.Scenario
	}{
		{"557.xz on 𝒞, fV, −97 mV", core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: xz, Kind: core.KindFV,
			SpendAging: true, Instructions: c.specInstr / 2, Seed: c.seed}},
		{"502.gcc on 𝒞, fV, −97 mV", core.Scenario{
			Chip: dvfs.XeonSilver4208(), Bench: gcc, Kind: core.KindFV,
			SpendAging: true, Instructions: c.specInstr / 2, Seed: c.seed}},
		{"nginx on 𝒜, fV, −97 mV", core.Scenario{
			Chip: dvfs.IntelI9_9900K(), Bench: workload.Nginx(), Kind: core.KindFV,
			SpendAging: true, Instructions: c.netInstr, Seed: c.seed}},
	}
	for _, cell := range cells {
		st, err := core.RunN(cell.sc, n)
		if err != nil {
			return err
		}
		t.AddRow(cell.label, pm(st.Perf, st.PerfSigma), pm(st.Power, st.PowerSigma),
			pm(st.Eff, st.EffSigma), pm(st.Share, st.ShareSigma))
	}
	return t.Render(w)
}

func byName(name string) (workload.Benchmark, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return workload.Benchmark{}, fmt.Errorf("suittables: missing workload %s", name)
	}
	return b, nil
}
