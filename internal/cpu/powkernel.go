// Algebraic mid-ramp integration support: an exponent-specialized Pow
// kernel plus pure, zero-allocation memo tables for the ramp-segment
// integrands (see DESIGN.md "Algebraic ramp integration").
//
// The hot-path contract of this file is bit-identity: every value a
// memo returns, and every value the kernel computes, must be the exact
// float64 math.Pow / voltPowIntegralsRef would have produced. The memos
// are therefore keyed on raw float64 bits (never on a rounded or
// quantized value) and the kernel replicates math.Pow's evaluation
// sequence operation for operation, falling back to math.Pow itself for
// every input class outside the replicated regime. Purity is what makes
// the caches legal under the reset-or-pure rule: a cached entry is a
// function of its key bits alone, so Machine.Reset can leave the tables
// populated and a warm replay still reproduces a cold run byte for byte.
package cpu

import (
	"math"
	"sync/atomic"

	"suit/internal/units"
)

// Memo geometry. Both tables are direct-mapped (open addressing with a
// probe window of one and overwrite eviction): a lookup touches exactly
// one entry, so a miss costs two compares on top of the computation it
// would have done anyway — essential because cold sweeps see almost no
// endpoint-pair recurrence, while Reset replays (warm suitd points, the
// hot-path benchmark) hit nearly 100%.
const (
	pairMemoBits = 11
	pairMemoSize = 1 << pairMemoBits
	powMemoBits  = 11
	powMemoSize  = 1 << powMemoBits

	// Adaptive probing: cold sweeps see essentially zero endpoint-pair
	// recurrence (measured: 11,176,844 distinct pairs in 11,179,935
	// segments), so for them every table probe is a wasted semi-random
	// cache access. After memoProbeWindow lookups in one run, a table
	// whose hit count is below window/memoProbeDivisor stops probing and
	// storing for the rest of that run; runInit re-arms probing, so warm
	// Reset replays (suitd, the hot-path benchmark) — which hit nearly
	// 100% — never trip the cutoff. Bit-safe by purity: a hit returns
	// exactly the value a miss would recompute, so when probing stops the
	// results are unchanged, only the lookups are.
	memoProbeWindow  = 1024
	memoProbeDivisor = 64
)

// powKind selects the evaluation strategy a powKernel resolved at
// construction.
type powKind uint8

const (
	// powFallback: exponents math.Pow special-cases before its
	// square-and-multiply core (y ∈ {0, 1, ±0.5}, y ≤ 0, NaN/Inf, or an
	// integer part too large for the bit loop). Every call goes straight
	// to math.Pow.
	powFallback powKind = iota
	// powGeneric: math.Pow's square-and-multiply sequence with the
	// Modf(y) split and the yf > 0.5 adjustment hoisted to construction.
	powGeneric
	// pow35: the yi == 3, yf == 0.5 shape (voltExp = 3.5, every shipped
	// preset) with the two-bit squaring loop unrolled. For normal x the
	// loop's ±2¹² exponent guard is unreachable (|xe| ≤ 2048 after one
	// doubling), so the unrolled form needs no guard to stay bit-equal.
	pow35
)

// powKernel evaluates x**exp for one fixed exponent, bit-equal to
// math.Pow(x, exp) for every float64 x (proven by the exhaustive
// randomized differential test in powkernel_test.go). The per-call wins
// over math.Pow are the hoisted Modf split/branch dispatch and, for the
// shipped 3.5 exponent, the unrolled bit loop and a guarded
// multiply-by-2**ae in place of Ldexp.
type powKernel struct {
	exp  float64
	yf   float64 // fractional part of exp, shifted into (-0.5, 0.5]
	yi   int64   // integer part of exp after the yf > 0.5 carry
	kind powKind
}

// newPowKernel resolves the evaluation strategy for exp. The
// classification mirrors math.Pow's special-case ladder: any exponent
// that ladder intercepts before the square-and-multiply core is marked
// powFallback so eval defers to math.Pow unconditionally.
func newPowKernel(exp float64) powKernel {
	k := powKernel{exp: exp, kind: powFallback}
	if exp <= 0 || exp == 1 || exp == 0.5 ||
		math.IsNaN(exp) || math.IsInf(exp, 0) {
		return k
	}
	yi, yf := math.Modf(exp)
	if yi >= 1<<63 {
		return k
	}
	if yf != 0 && yf > 0.5 {
		// math.Pow performs this shift inside its yf != 0 branch; doing
		// it here once is the whole point of specializing.
		yf--
		yi++
	}
	k.yi, k.yf = int64(yi), yf
	if k.yi == 3 && k.yf == 0.5 {
		k.kind = pow35
	} else {
		k.kind = powGeneric
	}
	return k
}

// eval computes x**k.exp, bit-equal to math.Pow(x, k.exp). The
// replicated regime is positive normal finite x != 1; everything else —
// zeros, subnormals, negatives, infinities, NaN, exactly 1 — takes
// math.Pow's own special-case ladder by calling it.
func (k *powKernel) eval(x float64) float64 {
	b := math.Float64bits(x)
	// b-minNormal wraps below the positive-normal range, so one unsigned
	// compare covers zeros, subnormals, negatives, infinities and NaN.
	if k.kind == powFallback ||
		b-0x0010000000000000 > 0x7fdfffffffffffff ||
		b == 0x3ff0000000000000 {
		return math.Pow(x, k.exp) // math.Pow's own special-case ladder is the reference for everything outside the replicated regime
	}
	// ans = a1 * 2**ae, exactly as math.Pow accumulates it.
	a1 := 1.0
	ae := 0
	if k.yf != 0 {
		a1 = math.Exp(k.yf * math.Log(x))
	}
	// Frexp by bit surgery: for a positive normal x the generic Frexp's
	// subnormal normalization is a no-op, so the mantissa/exponent split
	// is two integer operations.
	xe := int(b>>52&0x7ff) - 1022
	x1 := math.Float64frombits(b&^(0x7ff<<52) | 1022<<52)
	switch k.kind {
	case pow35:
		// yi = 3 = 0b11: both loop iterations multiply. Iteration one —
		// xe ∈ [-1021, 1024] for normal x, inside the ±2¹² guard.
		a1 *= x1
		ae += xe
		x1 *= x1
		xe <<= 1
		if x1 < 0.5 {
			x1 += x1
			xe--
		}
		// Iteration two — |xe| ≤ 2048, still inside the guard; the
		// trailing squaring touches only dead state and is dropped.
		a1 *= x1
		ae += xe
	default: // powGeneric
		for i := k.yi; i != 0; i >>= 1 {
			if xe < -1<<12 || 1<<12 < xe {
				// math.Pow resolves catastrophic overflow/underflow with
				// its own sign analysis; recomputing from scratch keeps
				// this rare exit bit-equal by construction.
				return math.Pow(x, k.exp)
			}
			if i&1 == 1 {
				a1 *= x1
				ae += xe
			}
			x1 *= x1
			xe <<= 1
			if x1 < 0.5 {
				x1 += x1
				xe--
			}
		}
	}
	if ae < -1022 || ae > 1023 {
		// 2**ae is not a normal float64: only Ldexp's subnormal/overflow
		// rounding reproduces math.Pow here.
		return math.Ldexp(a1, ae)
	}
	// 2**ae is exactly representable, so this single multiply is the
	// same correctly-rounded product Ldexp(a1, ae) computes.
	return a1 * math.Float64frombits(uint64(1023+ae)<<52)
}

// pairEntry caches the per-unit-length integrands of one ramp-segment
// endpoint pair; powEntry caches one Pow evaluation.
type pairEntry struct {
	ka, kb uint64
	i2, ie float64
}

type powEntry struct {
	k uint64
	p float64
}

// rampMemo is the per-machine (batch-shareable) memo for the mid-ramp
// integration path. All state is preallocated; lookups and inserts are
// allocation-free (the //suit:hotpath roots reach integrate/pow).
// Counters are plain local fields — the memo is only ever touched from
// one goroutine at a time (a machine, or the members of one
// sequentially co-stepped Batch) — and are drained into the
// process-wide atomics by flush at the end of each run.
type rampMemo struct {
	kern powKernel
	pair [pairMemoSize]pairEntry
	pows [powMemoSize]powEntry
	// Occupancy is tracked in side arrays whose zero value means empty,
	// so a fresh memo needs no key-sentinel initialization pass — the
	// runtime's zeroing of the allocation is the whole setup. A slot can
	// only hit after an insert set its flag, which rules out false hits
	// for every key pattern (including NaN bit patterns).
	pairLive [pairMemoSize]bool
	powLive  [powMemoSize]bool

	pairHits, pairMisses, pairEvictions uint64
	powHits, powMisses, powEvictions    uint64

	// Probe arms (see memoProbeWindow). Re-armed by arm() at runInit;
	// the miss/hit counters they are judged against reset at flush.
	pairProbe, powProbe bool
}

// arm re-enables adaptive probing for both tables at the start of a run.
func (mm *rampMemo) arm() {
	mm.pairProbe = true
	mm.powProbe = true
}

// newRampMemo builds an empty memo for one exponent.
func newRampMemo(exp float64) *rampMemo {
	mm := &rampMemo{kern: newPowKernel(exp)}
	mm.arm()
	return mm
}

// pairIdx hashes an endpoint-pair key into the pair table. The rotate
// keeps (va, vb) and (vb, va) from colliding structurally; the
// multiplicative mix spreads the near-identical mantissas of
// millivolt-scale ramp voltages across the index bits.
func pairIdx(ka, kb uint64) uint64 {
	h := (ka ^ (kb<<32 | kb>>32)) * 0x9E3779B97F4A7C15
	return h >> (64 - pairMemoBits)
}

// powIdx hashes one voltage-bits key into the pow table.
func powIdx(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> (64 - powMemoBits)
}

// pow returns v**exp through the bits-keyed memo, backing misses with
// the exponent-specialized kernel. Pure: the cached value is a function
// of the key bits alone.
func (mm *rampMemo) pow(v float64) float64 {
	if !mm.powProbe {
		mm.powMisses++
		return mm.kern.eval(v)
	}
	k := math.Float64bits(v)
	i := powIdx(k)
	e := &mm.pows[i]
	if mm.powLive[i] && e.k == k {
		mm.powHits++
		return e.p
	}
	mm.powMisses++
	p := mm.kern.eval(v)
	if mm.powLive[i] {
		mm.powEvictions++
	} else {
		mm.powLive[i] = true
	}
	e.k, e.p = k, p
	if mm.powHits+mm.powMisses == memoProbeWindow &&
		mm.powHits < memoProbeWindow/memoProbeDivisor {
		mm.powProbe = false
	}
	return p
}

// integrate is the memoized mid-ramp integration path: the same
// ∫V²dτ / ∫Vᵉdτ computation as voltPowIntegralsRef, restructured around
// the observation that both per-segment integrals are per-unit-length
// pure functions of the endpoint pair — seg enters only as the final
// multiply. The reference evaluates (…)/3 * seg left-to-right, so
// caching the (…)/3 prefix and multiplying by seg afterwards reproduces
// its float64 results bit for bit; a pair hit skips all three Pow
// evaluations. On a miss the segment-start Pow still prefers the
// domain's chain cache (consecutive segments share an endpoint), then
// the bits-keyed pow memo.
func (mm *rampMemo) integrate(d *domain, t0, t1 units.Second) (i2, ie float64) {
	if mm.kern.exp == 2 {
		// The quadratic exponent needs no Pow at all; the reference path
		// is already optimal and keeps the ie == i2 invariant exact.
		return d.voltPowIntegralsRef(t0, t1, 2)
	}
	// Segment split and ordering: identical to voltPowIntegralsRef. The
	// common mid-ramp case — no ramp breakpoint strictly inside (t0, t1)
	// — is a single segment, for which the sort below is a no-op; it is
	// skipped outright (same segments, same order, same bits).
	var points [4]units.Second
	points[0], points[1] = t0, t1
	n := 2
	if d.voltT0 > t0 && d.voltT0 < t1 {
		points[n] = d.voltT0
		n++
	}
	if d.voltT1 > t0 && d.voltT1 < t1 {
		points[n] = d.voltT1
		n++
	}
	if n > 2 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && points[j] < points[j-1]; j-- {
				points[j], points[j-1] = points[j-1], points[j]
			}
		}
	}
	for i := 1; i < n; i++ {
		a, b := points[i-1], points[i]
		if b <= a {
			continue
		}
		va, vb := float64(d.voltAt(a)), float64(d.voltAt(b))
		seg := float64(b - a)
		var i2u, ieu float64
		hit := false
		var idx uint64
		if mm.pairProbe {
			ka, kb := math.Float64bits(va), math.Float64bits(vb)
			idx = pairIdx(ka, kb)
			e := &mm.pair[idx]
			if mm.pairLive[idx] && e.ka == ka && e.kb == kb {
				mm.pairHits++
				i2u, ieu = e.i2, e.ie
				hit = true
			}
		}
		if !hit {
			mm.pairMisses++
			i2u = (va*va + va*vb + vb*vb) / 3
			var pa float64
			if d.pvOK && d.pvV == va {
				pa = d.pvP
			} else {
				pa = mm.pow(va)
			}
			vm := (va + vb) / 2
			pmid := mm.pow(vm)
			pb := mm.pow(vb)
			d.pvV, d.pvP, d.pvOK = vb, pb, true
			ieu = (pa + 4*pmid + pb) / 6
			if mm.pairProbe {
				if mm.pairLive[idx] {
					mm.pairEvictions++
				} else {
					mm.pairLive[idx] = true
				}
				e := &mm.pair[idx]
				e.ka, e.kb = math.Float64bits(va), math.Float64bits(vb)
				e.i2, e.ie = i2u, ieu
				if mm.pairHits+mm.pairMisses == memoProbeWindow &&
					mm.pairHits < memoProbeWindow/memoProbeDivisor {
					mm.pairProbe = false
				}
			}
		}
		i2 += i2u * seg
		ie += ieu * seg
	}
	return i2, ie
}

// Process-wide memo effectiveness counters, drained from per-memo
// locals by flush. Telemetry only: results never depend on them.
var (
	rampPairHits      atomic.Uint64
	rampPairMisses    atomic.Uint64
	rampPairEvictions atomic.Uint64
	rampPowHits       atomic.Uint64
	rampPowMisses     atomic.Uint64
	rampPowEvictions  atomic.Uint64
)

// flush folds the memo's local counters into the process-wide totals
// and zeroes them, so a batch-shared memo flushed by every member
// counts each event once.
func (mm *rampMemo) flush() {
	if mm.pairHits != 0 {
		rampPairHits.Add(mm.pairHits)
		mm.pairHits = 0
	}
	if mm.pairMisses != 0 {
		rampPairMisses.Add(mm.pairMisses)
		mm.pairMisses = 0
	}
	if mm.pairEvictions != 0 {
		rampPairEvictions.Add(mm.pairEvictions)
		mm.pairEvictions = 0
	}
	if mm.powHits != 0 {
		rampPowHits.Add(mm.powHits)
		mm.powHits = 0
	}
	if mm.powMisses != 0 {
		rampPowMisses.Add(mm.powMisses)
		mm.powMisses = 0
	}
	if mm.powEvictions != 0 {
		rampPowEvictions.Add(mm.powEvictions)
		mm.powEvictions = 0
	}
}

// RampMemoStats is a snapshot of the process-wide ramp-memo counters.
type RampMemoStats struct {
	PairHits, PairMisses, PairEvictions uint64
	PowHits, PowMisses, PowEvictions    uint64
}

// RampMemoStatsNow snapshots the cumulative ramp-memo effectiveness
// counters (telemetry for suitbench, suitsweep's stderr line and
// /metrics; results never depend on them).
func RampMemoStatsNow() RampMemoStats {
	return RampMemoStats{
		PairHits:      rampPairHits.Load(),
		PairMisses:    rampPairMisses.Load(),
		PairEvictions: rampPairEvictions.Load(),
		PowHits:       rampPowHits.Load(),
		PowMisses:     rampPowMisses.Load(),
		PowEvictions:  rampPowEvictions.Load(),
	}
}
