package hotpath_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer,
		"suit/internal/cpu", "suit/internal/other")
}
