package determinism_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"suit/internal/engine", "suit/internal/report")
}
