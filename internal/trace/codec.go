package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"suit/internal/isa"
)

// Binary trace format (SUITTRC1):
//
//	magic   [8]byte  "SUITTRC1"
//	nameLen uvarint, name bytes (UTF-8)
//	total   uvarint
//	ipc     float64 (IEEE 754, little endian)
//	nEvents uvarint
//	events  nEvents × (deltaIndex uvarint, opcode uvarint)
//
// Indices are delta-encoded against the previous event index, which keeps
// long sparse traces compact (gaps of billions of instructions fit in a
// few bytes).

var magic = [8]byte{'S', 'U', 'I', 'T', 'T', 'R', 'C', '1'}

// ErrBadMagic reports a stream that is not a SUITTRC1 trace.
var ErrBadMagic = errors.New("trace: bad magic, not a SUITTRC1 stream")

// maxDecodeEvents bounds decode allocation against corrupted headers.
const maxDecodeEvents = 1 << 28

// WriteBinary encodes t to w in the SUITTRC1 format. The trace must be
// valid; invalid traces are rejected so that corrupt files are never
// produced.
func WriteBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(t.Total); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(t.IPC))
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	var prev uint64
	for i, ev := range t.Events {
		delta := ev.Index
		if i > 0 {
			delta = ev.Index - prev
		}
		prev = ev.Index
		if err := putUvarint(delta); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Op)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a SUITTRC1 trace from r and validates it.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Trace{Name: string(nameBuf)}
	if t.Total, err = binary.ReadUvarint(br); err != nil {
		return nil, fmt.Errorf("trace: reading total: %w", err)
	}
	var ipcBuf [8]byte
	if _, err := io.ReadFull(br, ipcBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading ipc: %w", err)
	}
	t.IPC = math.Float64frombits(binary.LittleEndian.Uint64(ipcBuf[:]))
	nEvents, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	if nEvents > maxDecodeEvents {
		return nil, fmt.Errorf("trace: unreasonable event count %d", nEvents)
	}
	if nEvents > 0 {
		t.Events = make([]Event, nEvents)
	}
	var prev uint64
	for i := range t.Events {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d index: %w", i, err)
		}
		opRaw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event %d opcode: %w", i, err)
		}
		if opRaw >= uint64(isa.NumOpcodes) {
			return nil, fmt.Errorf("%w: event %d opcode %d", ErrBadOpcode, i, opRaw)
		}
		idx := delta
		if i > 0 {
			idx = prev + delta
			if idx < prev { // overflow
				return nil, fmt.Errorf("%w: event %d index overflow", ErrOutOfRange, i)
			}
		}
		prev = idx
		t.Events[i] = Event{Index: idx, Op: isa.Opcode(opRaw)}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// jsonTrace is the JSON wire form: events as [index, opcodeName] pairs.
type jsonTrace struct {
	Name   string          `json:"name"`
	Total  uint64          `json:"total"`
	IPC    float64         `json:"ipc"`
	Events [][2]any        `json:"-"`
	Raw    json.RawMessage `json:"events"`
}

type jsonEvent struct {
	Index uint64 `json:"i"`
	Op    string `json:"op"`
}

// MarshalJSON implements json.Marshaler for Trace.
func (t *Trace) MarshalJSON() ([]byte, error) {
	evs := make([]jsonEvent, len(t.Events))
	for i, ev := range t.Events {
		evs[i] = jsonEvent{Index: ev.Index, Op: ev.Op.String()}
	}
	raw, err := json.Marshal(evs)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonTrace{Name: t.Name, Total: t.Total, IPC: t.IPC, Raw: raw})
}

// UnmarshalJSON implements json.Unmarshaler for Trace.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	var evs []jsonEvent
	if len(jt.Raw) > 0 {
		if err := json.Unmarshal(jt.Raw, &evs); err != nil {
			return err
		}
	}
	t.Name, t.Total, t.IPC = jt.Name, jt.Total, jt.IPC
	t.Events = nil
	if len(evs) > 0 {
		t.Events = make([]Event, len(evs))
	}
	for i, je := range evs {
		op, ok := isa.ByName(je.Op)
		if !ok {
			return fmt.Errorf("%w: %q", ErrBadOpcode, je.Op)
		}
		t.Events[i] = Event{Index: je.Index, Op: op}
	}
	return t.Validate()
}
