package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestQuarantineCorruptEntry: a garbled cache file must read as a miss,
// be moved aside so it is never parsed again, and the job recomputed —
// never a wrong result, never a failed sweep.
func TestQuarantineCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	in := specs(4)
	warm := New(specKey, computeFn, Options{Workers: 2, BaseSeed: 3, CacheDir: dir})
	want, err := warm.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	path := CachePath(dir, 3, specKey(in[1]))
	if err := os.WriteFile(path, []byte(`{"key": "spec-1", "result": {tor`), 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(specKey, computeFn, Options{Workers: 2, BaseSeed: 3, CacheDir: dir})
	got, err := e.Run(context.Background(), in)
	if err != nil {
		t.Fatalf("corrupt cache entry failed the sweep: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spec %d changed after corruption recovery: %+v vs %+v", i, got[i], want[i])
		}
	}
	st := e.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1 (%+v)", st.Quarantined, st)
	}
	if st.Ran != 1 || st.DiskHits != 3 {
		t.Errorf("stats = %+v, want exactly the damaged job recomputed", st)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Errorf("corrupt file was not quarantined: %v", err)
	}
	// The recomputation must have healed the original slot.
	if _, err := os.Stat(path); err != nil {
		t.Errorf("healed cache entry missing: %v", err)
	}
}

// TestBitFlipInsideResultDetected: damage that still parses as JSON —
// the nastiest torn-write case — must be caught by the integrity digest
// rather than returning a silently wrong number.
func TestBitFlipInsideResultDetected(t *testing.T) {
	dir := t.TempDir()
	in := specs(1)
	warm := New(specKey, computeFn, Options{BaseSeed: 3, CacheDir: dir})
	want, err := warm.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	path := CachePath(dir, 3, specKey(in[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		t.Fatal(err)
	}
	// Flip the cached value while keeping the entry valid JSON.
	var r testResult
	if err := json.Unmarshal(ent.Result, &r); err != nil {
		t.Fatal(err)
	}
	r.Val += 0.25
	ent.Result, _ = json.Marshal(r)
	flipped, _ := json.Marshal(ent) // stale Sum: exactly what a torn write produces
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(specKey, computeFn, Options{BaseSeed: 3, CacheDir: dir})
	got, err := e.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Fatalf("bit-flipped entry served a wrong result: %+v, want %+v", got[0], want[0])
	}
	if st := e.Stats(); st.Quarantined != 1 || st.Ran != 1 {
		t.Errorf("stats = %+v, want the flipped entry quarantined and recomputed", st)
	}
}

// TestForeignEntryIsMissNotQuarantine: a healthy entry for a different
// fingerprint at the same filename (hash collision) is a miss, but not
// damage — it must stay on disk untouched.
func TestForeignEntryIsMissNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	key := specKey(testSpec{ID: 0})
	raw, _ := json.Marshal(testResult{ID: 99, Val: 0.5})
	foreign, _ := json.Marshal(cacheEntry{Key: "someone-else", Result: raw, Sum: entrySum("someone-else", raw)})
	path := CachePath(dir, 0, key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, foreign, 0o644); err != nil {
		t.Fatal(err)
	}

	e := New(specKey, computeFn, Options{CacheDir: dir})
	if _, ok := e.diskGet(key); ok {
		t.Fatal("foreign entry served as a hit")
	}
	if st := e.Stats(); st.Quarantined != 0 {
		t.Errorf("healthy foreign entry was quarantined: %+v", st)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("foreign entry should stay in place: %v", err)
	}
}

// TestCleanStaleTemps: orphaned temp files from a killed mid-write
// process are swept when the cache directory is opened; fresh temp
// files (a concurrent live sweep) and real entries survive.
func TestCleanStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-123456")
	fresh := filepath.Join(dir, ".tmp-654321")
	entry := filepath.Join(dir, "deadbeef.json")
	for _, p := range []string{stale, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if n := cleanStaleTemps(dir); n != 1 {
		t.Fatalf("removed %d temp files, want 1", n)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
	for _, p := range []string{fresh, entry} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s should survive the sweep: %v", filepath.Base(p), err)
		}
	}
}

// TestRunSweepsTempsOnce: the engine triggers the cleanup when it first
// touches its cache directory.
func TestRunSweepsTempsOnce(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-zzz")
	if err := os.WriteFile(stale, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	e := New(specKey, computeFn, Options{CacheDir: dir})
	if _, err := e.Run(context.Background(), specs(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("Run did not sweep the stale temp file")
	}
}

// FuzzCacheEntryDecode asserts the on-disk decoder's safety property
// over arbitrary bytes: truncated, garbled or foreign input always
// reads as a miss or as quarantinable corruption — never as a wrong
// result and never as a panic.
func FuzzCacheEntryDecode(f *testing.F) {
	key := specKey(testSpec{ID: 7})
	raw, _ := json.Marshal(testResult{ID: 7, Seed: 42, Val: 0.042})
	valid, _ := json.Marshal(cacheEntry{Key: key, Result: raw, Sum: entrySum(key, raw)})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"key":"spec-7","result":{"ID":8},"sum":"00"}`))
	f.Add([]byte(`{"key":"other","result":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff, 0xfe})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, ok, corrupt := decodeEntry[testResult](data, key)
		if ok && corrupt {
			t.Fatal("decode reported both a hit and corruption")
		}
		if !ok {
			if r != (testResult{}) {
				t.Fatalf("miss leaked a non-zero result: %+v", r)
			}
			return
		}
		// A hit must be exactly a well-formed entry for this key whose
		// integrity digest matches — re-derive everything independently.
		var ent cacheEntry
		if err := json.Unmarshal(data, &ent); err != nil {
			t.Fatalf("hit from undecodable bytes: %v", err)
		}
		if ent.Key != key {
			t.Fatalf("hit for foreign key %q", ent.Key)
		}
		if ent.Sum != entrySum(ent.Key, ent.Result) {
			t.Fatal("hit with a mismatched integrity digest")
		}
		var want testResult
		if err := json.Unmarshal(ent.Result, &want); err != nil {
			t.Fatalf("hit with undecodable result: %v", err)
		}
		if r != want {
			t.Fatalf("decoded result %+v differs from entry payload %+v", r, want)
		}
	})
}

// TestDecodeEntryRejectsMissingSum: entries from before the integrity
// digest (or with a stripped digest) are treated as corrupt, not
// trusted.
func TestDecodeEntryRejectsMissingSum(t *testing.T) {
	key := "spec-1"
	raw, _ := json.Marshal(testResult{ID: 1})
	legacy, _ := json.Marshal(struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}{Key: key, Result: raw})
	if _, ok, corrupt := decodeEntry[testResult](legacy, key); ok || !corrupt {
		t.Errorf("digest-less entry: ok=%v corrupt=%v, want miss+corrupt", ok, corrupt)
	}
}

func TestCheckpointJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cp, err := OpenCheckpoint(path, "cfg=1", false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Record("a")
	cp.Record("b")
	cp.Record("a") // idempotent
	if cp.Completed() != 2 {
		t.Fatalf("Completed = %d, want 2", cp.Completed())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with the same config loads the completed set.
	re, err := OpenCheckpoint(path, "cfg=1", true)
	if err != nil {
		t.Fatal(err)
	}
	if re.Completed() != 2 || !re.Done("a") || !re.Done("b") || re.Done("c") {
		t.Fatalf("resumed journal wrong: completed=%d", re.Completed())
	}
	re.Record("c")
	re.Close()

	// A different config must refuse to resume.
	if _, err := OpenCheckpoint(path, "cfg=2", true); err == nil ||
		!strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("config mismatch accepted: %v", err)
	}

	// Without resume the journal restarts.
	fresh, err := OpenCheckpoint(path, "cfg=2", false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Completed() != 0 || fresh.Done("a") {
		t.Error("truncating open kept old entries")
	}
	fresh.Close()
}

func TestCheckpointTornTailLineIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	cp, err := OpenCheckpoint(path, "cfg", false)
	if err != nil {
		t.Fatal(err)
	}
	cp.Record("a")
	cp.Close()
	// Simulate a SIGKILL mid-append: a half-written (non-hex-32) line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef")
	f.Close()

	re, err := OpenCheckpoint(path, "cfg", true)
	if err != nil {
		t.Fatalf("torn tail line broke resume: %v", err)
	}
	defer re.Close()
	if re.Completed() != 1 || !re.Done("a") {
		t.Errorf("completed=%d after torn line, want 1", re.Completed())
	}
}

func TestCheckpointRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, []byte("this is not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path, "cfg", true); err == nil {
		t.Fatal("foreign file accepted as a checkpoint journal")
	}
}

func TestNilCheckpointIsInert(t *testing.T) {
	var cp *Checkpoint
	cp.Record("a")
	if cp.Done("a") || cp.Completed() != 0 || cp.Path() != "" {
		t.Error("nil checkpoint not inert")
	}
	if err := cp.Close(); err != nil {
		t.Error(err)
	}
}
