package emul

import (
	"bytes"
	"crypto/aes"
	"testing"
	"testing/quick"
)

func TestInvSboxInvertsSbox(t *testing.T) {
	for x := 0; x < 256; x++ {
		if got := invSboxCT(sboxCT(byte(x))); got != byte(x) {
			t.Errorf("invSbox(sbox(%#02x)) = %#02x", x, got)
		}
		if got := sboxCT(invSboxCT(byte(x))); got != byte(x) {
			t.Errorf("sbox(invSbox(%#02x)) = %#02x", x, got)
		}
	}
}

func TestInvShiftRowsInvertsShiftRows(t *testing.T) {
	var in [16]byte
	for i := range in {
		in[i] = byte(i * 7)
	}
	if got := invShiftRows(shiftRows(in)); got != in {
		t.Errorf("invShiftRows(shiftRows(x)) = %x", got)
	}
	if got := shiftRows(invShiftRows(in)); got != in {
		t.Errorf("shiftRows(invShiftRows(x)) = %x", got)
	}
}

func TestInvMixColumnsInvertsMixColumns(t *testing.T) {
	prop := func(in [16]byte) bool {
		return invMixColumns(mixColumns(in)) == in && mixColumns(invMixColumns(in)) == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	prop := func(key, block [16]byte) bool {
		return DecryptAES128(key, EncryptAES128(key, block)) == block
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecryptAES128AgainstStdlib(t *testing.T) {
	prop := func(key, ct [16]byte) bool {
		c, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		want := make([]byte, 16)
		c.Decrypt(want, ct[:])
		got := DecryptAES128(key, ct)
		return bytes.Equal(got[:], want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAESDECLASTDiffersFromAESDEC(t *testing.T) {
	state := Vec128{0x0123456789abcdef, 0xfedcba9876543210}
	key := Vec128{0x1111111111111111, 0x2222222222222222}
	if AESDEC(state, key) == AESDECLAST(state, key) {
		t.Error("AESDEC and AESDECLAST agree; InvMixColumns is missing")
	}
}
