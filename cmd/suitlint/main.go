// Command suitlint is the SUIT simulator's static-analysis suite. It
// bundles five domain analyzers:
//
//	determinism  no wall clock, global rand, unseeded sources or
//	             order-dependent map iteration in result-affecting
//	             packages (the engine's cross--j replay contract)
//	exhaustive   switches over enum-like simulator types cover every
//	             constant or panic in an explicit default
//	units        no raw literals into internal/units quantity types,
//	             no bare cross-unit conversions
//	panicpath    panic only for machine invariants; I/O and command
//	             paths return errors
//	hotpath      math.Pow in internal/cpu's per-event code must carry
//	             an explained allow (the constant-voltage fast path
//	             makes the slow path exceptional)
//
// Findings are suppressed line-by-line with an explained comment:
//
//	//lint:allow <analyzer> <reason>
//
// It runs in two modes:
//
//	suitlint [packages]            standalone, e.g. suitlint ./...
//	go vet -vettool=suitlint pkgs  as a vet tool (cmd/go protocol)
//
// Exit status is 0 when the tree is clean, 2 when diagnostics were
// reported, 1 on usage or load errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"suit/internal/analysis"
	"suit/internal/analysis/determinism"
	"suit/internal/analysis/exhaustive"
	"suit/internal/analysis/hotpath"
	"suit/internal/analysis/load"
	"suit/internal/analysis/panicpath"
	"suit/internal/analysis/unitchecker"
	"suit/internal/analysis/unitsafe"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		exhaustive.Analyzer,
		unitsafe.Analyzer,
		panicpath.Analyzer,
		hotpath.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// Vet tool protocol, part 1: `suitlint -V=full` prints a version
	// line whose content hash the go command uses as a cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		printVersion()
		return
	}
	// Vet tool protocol, part 2: `suitlint -flags` describes the flags
	// the go command may forward. The analyzers take none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet tool protocol, part 3: one JSON config file per package.
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		unitchecker.Run(args[len(args)-1], analyzers())
		return
	}

	os.Exit(standalone(args))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("suitlint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: suitlint [-only=a,b] [packages]")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "\n%s:\n  %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	run := analyzers()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range run {
			byName[a.Name] = a
		}
		run = run[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "suitlint: unknown analyzer %q\n", name)
				return 1
			}
			run = append(run, a)
		}
	}

	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suitlint:", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suitlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		found += len(diags)
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "suitlint: %d finding(s)\n", found)
		return 2
	}
	return 0
}

// printVersion emits "<name> version <id>" where id hashes the binary,
// so the go command's vet cache invalidates when suitlint changes.
func printVersion() {
	name := "suitlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:16])
}
