package emul

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"

	"suit/internal/isa"
	"suit/internal/units"
)

func TestLaneAccessors(t *testing.T) {
	v := Vec128{Lo: 0x1111111122222222, Hi: 0x3333333344444444}
	wants := [4]uint32{0x22222222, 0x11111111, 0x44444444, 0x33333333}
	for i, w := range wants {
		if got := v.U32(i); got != w {
			t.Errorf("U32(%d) = %#x, want %#x", i, got, w)
		}
	}
	for i := 0; i < 4; i++ {
		mod := v.WithU32(i, 0xAAAAAAAA)
		if mod.U32(i) != 0xAAAAAAAA {
			t.Errorf("WithU32(%d) did not set lane", i)
		}
		for j := 0; j < 4; j++ {
			if j != i && mod.U32(j) != v.U32(j) {
				t.Errorf("WithU32(%d) clobbered lane %d", i, j)
			}
		}
	}
}

func TestLanePanicsOutOfRange(t *testing.T) {
	fns := map[string]func(){
		"U32":     func() { Vec128{}.U32(4) },
		"WithU32": func() { Vec128{}.WithU32(-1, 0) },
		"F64":     func() { Vec128{}.F64(2) },
	}
	for name, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBytesRoundTrip(t *testing.T) {
	prop := func(lo, hi uint64) bool {
		v := Vec128{lo, hi}
		return FromBytes(v.Bytes()) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Byte 0 is the LSB of Lo (little endian).
	b := Vec128{Lo: 0x01}.Bytes()
	if b[0] != 1 {
		t.Error("byte order not little-endian")
	}
}

func TestBitwiseOps(t *testing.T) {
	a := Vec128{0xF0F0F0F0F0F0F0F0, 0xAAAAAAAAAAAAAAAA}
	b := Vec128{0xFF00FF00FF00FF00, 0xCCCCCCCCCCCCCCCC}
	if got := VOR(a, b); got != (Vec128{a.Lo | b.Lo, a.Hi | b.Hi}) {
		t.Errorf("VOR = %v", got)
	}
	if got := VXOR(a, b); got != (Vec128{a.Lo ^ b.Lo, a.Hi ^ b.Hi}) {
		t.Errorf("VXOR = %v", got)
	}
	if got := VAND(a, b); got != (Vec128{a.Lo & b.Lo, a.Hi & b.Hi}) {
		t.Errorf("VAND = %v", got)
	}
	// VANDN is ~a & b, x86 operand order.
	if got := VANDN(a, b); got != (Vec128{^a.Lo & b.Lo, ^a.Hi & b.Hi}) {
		t.Errorf("VANDN = %v", got)
	}
}

func TestBitwiseAlgebra(t *testing.T) {
	prop := func(alo, ahi, blo, bhi uint64) bool {
		a, b := Vec128{alo, ahi}, Vec128{blo, bhi}
		// x ^ x == 0; x | x == x; x & x == x; andn(x, x) == 0.
		if VXOR(a, a) != (Vec128{}) || VOR(a, a) != a || VAND(a, a) != a {
			return false
		}
		if VANDN(a, a) != (Vec128{}) {
			return false
		}
		// De Morgan via andn: ~a & b == xor(or(a,b), a).
		return VANDN(a, b) == VXOR(VOR(a, b), a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVPADDQWraps(t *testing.T) {
	a := Vec128{math.MaxUint64, 5}
	b := Vec128{1, 10}
	got := VPADDQ(a, b)
	if got.Lo != 0 || got.Hi != 15 {
		t.Errorf("VPADDQ = %+v, want wrap to 0 and 15", got)
	}
}

func TestVPSRADArithmetic(t *testing.T) {
	v := Vec128{}.WithU32(0, 0x80000000).WithU32(1, 0x00000010).WithU32(2, 0xFFFFFFF0).WithU32(3, 1)
	got := VPSRAD(v, 4)
	if got.U32(0) != 0xF8000000 {
		t.Errorf("negative lane shift = %#x, want sign fill", got.U32(0))
	}
	if got.U32(1) != 1 {
		t.Errorf("positive lane shift = %#x, want 1", got.U32(1))
	}
	if got.U32(2) != 0xFFFFFFFF {
		t.Errorf("−16>>4 = %#x, want −1", got.U32(2))
	}
	if got.U32(3) != 0 {
		t.Errorf("1>>4 = %#x, want 0", got.U32(3))
	}
	// Shift ≥ 32 fills with the sign bit.
	big := VPSRAD(v, 40)
	if big.U32(0) != 0xFFFFFFFF || big.U32(1) != 0 {
		t.Errorf("saturating shift = %#x/%#x", big.U32(0), big.U32(1))
	}
}

func TestVPCMPEQD(t *testing.T) {
	a := Vec128{}.WithU32(0, 7).WithU32(1, 8).WithU32(2, 0).WithU32(3, 0xFFFFFFFF)
	b := Vec128{}.WithU32(0, 7).WithU32(1, 9).WithU32(2, 0).WithU32(3, 0xFFFFFFFF)
	got := VPCMPEQD(a, b)
	wants := [4]uint32{0xFFFFFFFF, 0, 0xFFFFFFFF, 0xFFFFFFFF}
	for i, w := range wants {
		if got.U32(i) != w {
			t.Errorf("lane %d = %#x, want %#x", i, got.U32(i), w)
		}
	}
}

func TestVPMAXSDSigned(t *testing.T) {
	a := Vec128{}.WithU32(0, 0xFFFFFFFF).WithU32(1, 100) // −1, 100
	b := Vec128{}.WithU32(0, 1).WithU32(1, 0x80000000)   // 1, INT32_MIN
	got := VPMAXSD(a, b)
	if got.U32(0) != 1 {
		t.Errorf("max(−1,1) = %#x, want 1 (signed compare)", got.U32(0))
	}
	if got.U32(1) != 100 {
		t.Errorf("max(100,INT32_MIN) = %#x, want 100", got.U32(1))
	}
}

func TestVSQRTPD(t *testing.T) {
	v := FromF64(9, 2.25)
	got := VSQRTPD(v)
	if got.F64(0) != 3 || got.F64(1) != 1.5 {
		t.Errorf("VSQRTPD = %v/%v", got.F64(0), got.F64(1))
	}
	// Negative input produces NaN, like the hardware.
	neg := VSQRTPD(FromF64(-1, 4))
	if !math.IsNaN(neg.F64(0)) || neg.F64(1) != 2 {
		t.Errorf("VSQRTPD(-1,4) = %v/%v", neg.F64(0), neg.F64(1))
	}
}

func TestVPCLMULQDQKnownVectors(t *testing.T) {
	// (x+1)·(x+1) = x²+1 in GF(2)[x]: 3 ⊗ 3 = 5.
	if got := clmul64(3, 3); got.Lo != 5 || got.Hi != 0 {
		t.Errorf("3⊗3 = %+v, want Lo=5", got)
	}
	// Multiplying by x (=2) is a left shift.
	if got := clmul64(0x8000000000000000, 2); got.Lo != 0 || got.Hi != 1 {
		t.Errorf("MSB⊗x = %+v, want carry into Hi", got)
	}
	// Identity.
	if got := clmul64(0xDEADBEEFCAFEBABE, 1); got.Lo != 0xDEADBEEFCAFEBABE || got.Hi != 0 {
		t.Errorf("a⊗1 = %+v", got)
	}
}

func TestVPCLMULQDQProperties(t *testing.T) {
	prop := func(a, b, c uint64) bool {
		// Commutative.
		if clmul64(a, b) != clmul64(b, a) {
			return false
		}
		// Distributive over xor.
		ab := clmul64(a, b)
		ac := clmul64(a, c)
		abc := clmul64(a, b^c)
		if abc.Lo != ab.Lo^ac.Lo || abc.Hi != ab.Hi^ac.Hi {
			return false
		}
		// Degree bound: deg(a⊗b) = deg(a)+deg(b).
		if a != 0 && b != 0 {
			deg := (63 - bits.LeadingZeros64(a)) + (63 - bits.LeadingZeros64(b))
			r := clmul64(a, b)
			var topBit int
			if r.Hi != 0 {
				topBit = 64 + 63 - bits.LeadingZeros64(r.Hi)
			} else if r.Lo != 0 {
				topBit = 63 - bits.LeadingZeros64(r.Lo)
			} else {
				return false // product of nonzero polynomials is nonzero
			}
			if topBit != deg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVPCLMULQDQImmSelectors(t *testing.T) {
	a := Vec128{Lo: 3, Hi: 7}
	b := Vec128{Lo: 5, Hi: 9}
	if VPCLMULQDQ(a, b, 0x00) != clmul64(3, 5) {
		t.Error("imm 0x00 must select Lo×Lo")
	}
	if VPCLMULQDQ(a, b, 0x01) != clmul64(7, 5) {
		t.Error("imm 0x01 must select Hi×Lo")
	}
	if VPCLMULQDQ(a, b, 0x10) != clmul64(3, 9) {
		t.Error("imm 0x10 must select Lo×Hi")
	}
	if VPCLMULQDQ(a, b, 0x11) != clmul64(7, 9) {
		t.Error("imm 0x11 must select Hi×Hi")
	}
}

func TestEmulateDispatch(t *testing.T) {
	a := Vec128{0xF0, 0x0F}
	b := Vec128{0x0F, 0xF0}
	for _, op := range isa.Faultable() {
		got, err := Emulate(op, a, b, 0)
		if err != nil {
			t.Errorf("Emulate(%v) failed: %v", op, err)
			continue
		}
		_ = got
	}
	// Spot-check dispatch correctness.
	if got, _ := Emulate(isa.OpVOR, a, b, 0); got != VOR(a, b) {
		t.Error("VOR dispatch wrong")
	}
	if got, _ := Emulate(isa.OpAESENC, a, b, 0); got != AESENC(a, b) {
		t.Error("AESENC dispatch wrong")
	}
	if got, _ := Emulate(isa.OpVPSRAD, a, b, 4); got != VPSRAD(a, 4) {
		t.Error("VPSRAD dispatch must use imm as shift count")
	}
	// Non-emulatable opcodes error.
	for _, op := range []isa.Opcode{isa.OpIMUL, isa.OpALU, isa.OpNop} {
		if _, err := Emulate(op, a, b, 0); err == nil {
			t.Errorf("Emulate(%v) should fail", op)
		}
	}
}

func TestCostModel(t *testing.T) {
	m := NewCostModel(units.Microseconds(0.77))
	f := units.GHz(4)
	// Cost = call delay + cycles/f; VOR is 6 cycles = 1.5 ns at 4 GHz.
	got := m.Time(isa.OpVOR, f)
	want := units.Microseconds(0.77) + units.TimeFor(6, f)
	if math.Abs(float64(got-want)) > 1e-15 {
		t.Errorf("Time(VOR) = %v, want %v", got, want)
	}
	// AESENC costs more than VOR; the call delay dominates both (§3.4:
	// "the two transitions into the kernel and back dominate").
	aes := m.Time(isa.OpAESENC, f)
	if aes <= got {
		t.Error("AESENC emulation must cost more than VOR")
	}
	if float64(m.CallDelay)/float64(aes) < 0.5 {
		t.Errorf("call delay should dominate emulation cost: %v of %v", m.CallDelay, aes)
	}
	// Every faultable opcode has a cycle count.
	for _, op := range isa.Faultable() {
		if m.Cycles[op] <= 0 {
			t.Errorf("no cycle count for %v", op)
		}
	}
}
