// specsweep: Fig 16 — SUIT's fV strategy over the whole SPEC CPU2017
// suite (plus nginx and VLC) on CPU 𝒞, at both the −70 mV and −97 mV
// design points, ordered by efficiency gain.
//
// Workloads that use faultable instructions sparingly (557.xz,
// 523.xalancbmk) live on the efficient curve and collect the full gain;
// dense ones (520.omnetpp, 521.wrf) are parked on the conservative curve
// by thrashing prevention and lose nothing.
//
//	go run ./examples/specsweep [-instr 5e8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"suit/internal/core"
	"suit/internal/dvfs"
	"suit/internal/report"
	"suit/internal/workload"
)

type row struct {
	name   string
	lo, hi core.Outcome
}

func main() {
	instrStr := flag.String("instr", "5e8", "instructions per run")
	flag.Parse()
	totalF, err := strconv.ParseFloat(*instrStr, 64)
	if err != nil || totalF < 1e6 {
		log.Fatalf("bad -instr %q", *instrStr)
	}
	instr := uint64(totalF)

	chip := dvfs.XeonSilver4208()
	benches := append(workload.SPEC(), workload.Nginx(), workload.VLC())
	rows := make([]row, len(benches))

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b workload.Benchmark) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			one := func(aging bool) (core.Outcome, error) {
				return core.Run(core.Scenario{
					Chip: chip, Bench: b, Kind: core.KindFV,
					SpendAging: aging, Instructions: instr, Seed: 1,
				})
			}
			lo, err := one(false)
			if err == nil {
				var hi core.Outcome
				hi, err = one(true)
				rows[i] = row{name: b.Name, lo: lo, hi: hi}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", b.Name, err)
				}
				mu.Unlock()
			}
		}(i, b)
	}
	wg.Wait()
	if firstErr != nil {
		log.Fatal(firstErr)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].hi.Efficiency > rows[j].hi.Efficiency })
	t := report.NewTable(
		fmt.Sprintf("Fig 16: fV on %s (sorted by −97 mV efficiency)", chip.Name),
		"workload", "perf −70", "eff −70", "perf −97", "eff −97", "E-share")
	for _, r := range rows {
		t.AddRow(r.name,
			report.Pct(r.lo.Change.Perf), report.Pct(r.lo.Efficiency),
			report.Pct(r.hi.Change.Perf), report.Pct(r.hi.Efficiency),
			fmt.Sprintf("%.1f %%", r.hi.EfficientShare*100))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	var sumEff, sumShare float64
	for _, r := range rows[:23] {
		sumEff += r.hi.Efficiency
		sumShare += r.hi.EfficientShare
	}
	fmt.Printf("\nSPEC mean at −97 mV: efficiency %+.1f %%, efficient-curve residency %.1f %% (paper: ≈+11 %%, 72.7 %%)\n",
		sumEff/23*100, sumShare/23*100)
}
