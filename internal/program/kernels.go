package program

import "suit/internal/isa"

// A library of program kernels modelled on the workloads the paper's
// introduction motivates. Instruction budgets follow the actual algorithm
// structure, so the recorded burst/gap shapes are a consequence of the
// code rather than fitted parameters.

// AESGCMSeal models encrypting n bytes with AES-128-GCM using AES-NI and
// PCLMULQDQ, as TLS record processing does: per 16-byte block, ten AESENC
// rounds for the counter block plus a GHASH carry-less multiply, with the
// usual load/store/ALU glue.
func AESGCMSeal(n uint64) *Program {
	blocks := (n + 15) / 16
	if blocks == 0 {
		blocks = 1
	}
	perBlock := Seq{
		Inst{Op: isa.OpLoad, N: 2},       // counter + plaintext
		Inst{Op: isa.OpAESENC, N: 10},    // AES-128 rounds
		Inst{Op: isa.OpVXOR, N: 1},       // CTR xor
		Inst{Op: isa.OpVPCLMULQDQ, N: 2}, // GHASH multiply + reduce half
		Inst{Op: isa.OpVXOR, N: 1},       // GHASH accumulate
		Inst{Op: isa.OpStore, N: 1},      // ciphertext
		Inst{Op: isa.OpALU, N: 6},        // pointer/length bookkeeping
		Inst{Op: isa.OpBranch, N: 1},     // loop
	}
	return &Program{
		Name: "aes-gcm-seal",
		IPC:  1.8,
		Body: Seq{
			Inst{Op: isa.OpALU, N: 40}, // key schedule set-up amortised
			Loop{Count: blocks, Body: perBlock},
			Inst{Op: isa.OpAESENC, N: 10}, // tag block
			Inst{Op: isa.OpVPCLMULQDQ, N: 2},
		},
	}
}

// HTTPSRequest models one nginx request serving fileKB kilobytes over
// TLS: parsing and socket work, then record-sized AES-GCM seals, then
// response bookkeeping. quietInstr is the non-crypto request handling
// (kernel network stack, parsing, logging).
func HTTPSRequest(fileKB uint64, quietInstr uint64) *Program {
	if fileKB == 0 {
		fileKB = 1
	}
	records := (fileKB*1024 + 16383) / 16384 // 16 KiB TLS records
	seal := AESGCMSeal(16384)
	return &Program{
		Name: "https-request",
		IPC:  1.2,
		Body: Seq{
			Inst{Op: isa.OpALU, N: quietInstr / 2},
			Inst{Op: isa.OpLoad, N: quietInstr / 4},
			Inst{Op: isa.OpBranch, N: quietInstr / 4},
			Loop{Count: records, Body: seal.Body},
			Inst{Op: isa.OpALU, N: quietInstr / 4},
		},
	}
}

// VideoSAD models an x264-style sum-of-absolute-differences / DCT motion
// estimation kernel: IMUL-dense inner loops over macroblocks — the
// workload that makes IMUL too frequent to trap (§4.2).
func VideoSAD(macroblocks uint64) *Program {
	if macroblocks == 0 {
		macroblocks = 1
	}
	perBlock := Seq{
		Inst{Op: isa.OpLoad, N: 32},
		Inst{Op: isa.OpALU, N: 180},
		Inst{Op: isa.OpIMUL, N: 4}, // quantisation multiplies
		Inst{Op: isa.OpVPMAX, N: 2},
		Inst{Op: isa.OpStore, N: 8},
		Inst{Op: isa.OpBranch, N: 16},
	}
	return &Program{
		Name: "video-sad",
		IPC:  2.4,
		Body: Seq{Loop{Count: macroblocks, Body: perBlock}},
	}
}

// CompressionBlock models an xz/LZMA-style match finder: long stretches of
// scalar work with an occasional vector compare burst and a CRC via
// carry-less multiply at block boundaries.
func CompressionBlock(literals uint64) *Program {
	if literals == 0 {
		literals = 1
	}
	perLiteral := Seq{
		Inst{Op: isa.OpLoad, N: 3},
		Inst{Op: isa.OpALU, N: 9},
		Inst{Op: isa.OpBranch, N: 2},
	}
	return &Program{
		Name: "compression-block",
		IPC:  1.3,
		Body: Seq{
			Loop{Count: literals, Body: perLiteral},
			Inst{Op: isa.OpVPCMP, N: 24},     // match-finder burst
			Inst{Op: isa.OpVPCLMULQDQ, N: 4}, // CRC64 of the block
			Inst{Op: isa.OpALU, N: 64},
		},
	}
}
