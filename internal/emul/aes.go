package emul

// AESENC emulation (§3.4): the paper emulates AESENC with a side-channel-
// resilient AES implementation. This file provides two implementations of
// the AESENC round function:
//
//   - aesencRef: the reference semantics using the S-box lookup table —
//     this is what the hardware instruction computes and what the
//     emulation is validated against;
//   - AESENC: the table-free constant-time emulation. SubBytes is computed
//     algebraically (GF(2^8) inversion by a fixed square-and-multiply
//     chain plus the affine transform) with branch-free arithmetic and no
//     secret-dependent memory accesses.
//
// The full AES-128 encryption assembled from these rounds is cross-checked
// against crypto/aes in the tests, which validates round semantics,
// ShiftRows/MixColumns ordering and key expansion end to end.
//
// AESENC semantics (Intel SDM):
//
//	state ← MixColumns(SubBytes(ShiftRows(state))) ⊕ roundKey
//
// AESENCLAST omits MixColumns. The state is the usual AES column-major
// layout: byte i of the block is state row i mod 4, column i / 4.

// AESENC computes one AES encryption round using the constant-time
// emulation.
func AESENC(state, roundKey Vec128) Vec128 {
	b := state.Bytes()
	b = shiftRows(b)
	for i := range b {
		b[i] = sboxCT(b[i])
	}
	b = mixColumns(b)
	out := FromBytes(b)
	return VXOR(out, roundKey)
}

// AESENCLAST computes the final AES round (no MixColumns).
func AESENCLAST(state, roundKey Vec128) Vec128 {
	b := state.Bytes()
	b = shiftRows(b)
	for i := range b {
		b[i] = sboxCT(b[i])
	}
	out := FromBytes(b)
	return VXOR(out, roundKey)
}

// aesencRef is the reference round using the S-box table.
func aesencRef(state, roundKey Vec128) Vec128 {
	b := state.Bytes()
	b = shiftRows(b)
	for i := range b {
		b[i] = sboxTable[b[i]]
	}
	b = mixColumns(b)
	return VXOR(FromBytes(b), roundKey)
}

// shiftRows rotates row r of the column-major state left by r positions.
func shiftRows(b [16]byte) [16]byte {
	var out [16]byte
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out[4*c+r] = b[4*((c+r)%4)+r]
		}
	}
	return out
}

// xtime multiplies by x in GF(2^8) mod x⁸+x⁴+x³+x+1, branch-free.
func xtime(a byte) byte {
	return a<<1 ^ (0x1b & (0 - a>>7))
}

// mixColumns applies the AES MixColumns matrix to each column.
func mixColumns(b [16]byte) [16]byte {
	var out [16]byte
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[4*c], b[4*c+1], b[4*c+2], b[4*c+3]
		out[4*c] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		out[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		out[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		out[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
	return out
}

// gmul multiplies in GF(2^8) with a branch-free shift-and-xor loop.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		p ^= a & (0 - (b >> i & 1))
		a = xtime(a)
	}
	return p
}

// sboxCT computes the AES S-box without table lookups: the GF(2^8)
// multiplicative inverse via the fixed exponent chain x^254, followed by
// the affine transform. Every step is a fixed sequence of arithmetic
// operations — no secret-dependent branches or loads.
func sboxCT(x byte) byte {
	// x^254 by square-and-multiply over the fixed exponent 0b11111110.
	inv := byte(1)
	for bit := 7; bit >= 0; bit-- {
		inv = gmul(inv, inv)
		if 254>>bit&1 == 1 { // exponent bits are public constants
			inv = gmul(inv, x)
		}
	}
	// Affine transform: s = inv ⊕ rotl(inv,1) ⊕ rotl(inv,2) ⊕ rotl(inv,3)
	// ⊕ rotl(inv,4) ⊕ 0x63.
	rotl := func(v byte, n uint) byte { return v<<n | v>>(8-n) }
	return inv ^ rotl(inv, 1) ^ rotl(inv, 2) ^ rotl(inv, 3) ^ rotl(inv, 4) ^ 0x63
}

// sboxTable is the FIPS-197 S-box, used only by the reference semantics.
var sboxTable = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// ExpandKeyAES128 performs AES-128 key expansion, returning the 11 round
// keys. It uses the constant-time S-box (the key is secret too).
func ExpandKeyAES128(key [16]byte) [11]Vec128 {
	var w [44]uint32
	for i := 0; i < 4; i++ {
		w[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 | uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord then SubWord on little-endian packed bytes.
			t = t>>8 | t<<24
			t = uint32(sboxCT(byte(t))) |
				uint32(sboxCT(byte(t>>8)))<<8 |
				uint32(sboxCT(byte(t>>16)))<<16 |
				uint32(sboxCT(byte(t>>24)))<<24
			t ^= uint32(rcon)
			rcon = xtime(rcon)
		}
		w[i] = w[i-4] ^ t
	}
	var out [11]Vec128
	for r := 0; r < 11; r++ {
		var b [16]byte
		for c := 0; c < 4; c++ {
			word := w[4*r+c]
			b[4*c] = byte(word)
			b[4*c+1] = byte(word >> 8)
			b[4*c+2] = byte(word >> 16)
			b[4*c+3] = byte(word >> 24)
		}
		out[r] = FromBytes(b)
	}
	return out
}

// EncryptAES128 encrypts one block with AES-128 assembled from the
// emulated rounds: AddRoundKey, 9× AESENC, AESENCLAST. Used to validate
// the emulation against crypto/aes.
func EncryptAES128(key, block [16]byte) [16]byte {
	rk := ExpandKeyAES128(key)
	state := VXOR(FromBytes(block), rk[0])
	for r := 1; r <= 9; r++ {
		state = AESENC(state, rk[r])
	}
	state = AESENCLAST(state, rk[10])
	return state.Bytes()
}
