// Command suitsweep searches the operating-strategy parameter space
// (p_dl, p_ts, p_ec, p_df — §4.3) for the efficiency-optimal setting,
// reproducing the methodology behind Table 7 ("we ran hundreds of
// simulations to find the optimal values").
//
// The sweep fans out through the shared parallel experiment engine
// (internal/engine): -j bounds the worker pool, -cache reuses results
// across runs, and per-point seeds derive deterministically from the
// point fingerprint plus -seed, so the report is byte-identical at any
// parallelism level. Progress and throughput go to stderr; the table
// itself goes to stdout.
//
// Execution mode: by default points share content-addressed trace
// artifacts and co-step their run/base machines over one event stream
// (-batch=true); -batch=false forces fully independent points. Both
// modes print byte-identical output — batching only changes how the
// same arithmetic is scheduled.
//
// Resilience flags: -retries re-runs transiently failing points with
// the same derived seed (default 0: no retries; contrast suitd, whose
// -retries defaults to 1), -job-timeout arms a per-job watchdog,
// -on-error=continue finishes the sweep past failures (failed points
// are dropped from the ranking and their fingerprints listed on
// stderr), and -resume continues an interrupted sweep from the
// checkpoint journal kept next to the -cache directory.
//
// Exit codes: 0 success, 1 usage or environment error, 2 job failures,
// 130 interrupted (checkpoint flushed; re-run with -resume).
//
// Example:
//
//	suitsweep -chip C -offset 97 -instr 3e8 -j 8 -cache /tmp/sweepcache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"suit/internal/core"
	"suit/internal/cpu"
	"suit/internal/dvfs"
	"suit/internal/engine"
	"suit/internal/metrics"
	"suit/internal/prof"
	"suit/internal/report"
	"suit/internal/strategy"
	"suit/internal/workload"
)

// sweepPoint is one parameter combination with its outcome.
type sweepPoint struct {
	p   strategy.Params
	eff float64
}

// chipByName, sweepGrid and sweepBenches live in internal/core
// (ChipByName, SweepGrid, SweepBenches) so the suitd service and this
// CLI resolve specs identically; the thin aliases keep call sites
// readable.
var (
	chipByName   = core.ChipByName
	sweepGrid    = core.SweepGrid
	sweepBenches = core.SweepBenches
)

// sweep evaluates the whole grid × workload matrix through the engine
// and aggregates the per-point mean efficiency, preserving grid order.
// Under the continue-on-error policy, failed scenarios come back as
// fingerprints and every grid point they touch is excluded from the
// ranking — a partially simulated point would corrupt its mean.
func sweep(chip dvfs.Chip, grid []strategy.Params, benches []workload.Benchmark, spendAging bool, instr uint64) ([]sweepPoint, []string, error) {
	scs := make([]core.Scenario, 0, len(grid)*len(benches))
	for i := range grid {
		for _, b := range benches {
			scs = append(scs, core.Scenario{
				Chip: chip, Bench: b, Kind: core.KindFV,
				SpendAging: spendAging, Instructions: instr,
				Params: &grid[i], // Seed 0: engine derives the per-point seed
			})
		}
	}
	outs, err := core.RunAll(scs)
	var re *engine.RunError
	if err != nil && !errors.As(err, &re) {
		return nil, nil, err
	}
	failedPoint := make([]bool, len(grid))
	var failed []string
	if re != nil {
		failed = re.Keys()
		for _, f := range re.Failures {
			failedPoint[f.Index/len(benches)] = true
		}
	}
	points := make([]sweepPoint, 0, len(grid))
	for i := range grid {
		if failedPoint[i] {
			continue
		}
		effs := make([]float64, len(benches))
		for j := range benches {
			effs[j] = outs[i*len(benches)+j].Efficiency
		}
		mean, _ := metrics.Mean(effs)
		points = append(points, sweepPoint{p: grid[i], eff: mean})
	}
	// Rank by mean efficiency; exact ties keep grid order so the report
	// never depends on sort internals.
	sort.SliceStable(points, func(i, j int) bool { return points[i].eff > points[j].eff })
	return points, failed, nil
}

// Exit codes. Usage mistakes and environment failures exit 1; job
// failures under -on-error=continue exit 2 so scripts can tell "you
// called it wrong" from "some simulations died"; SIGINT exits 130
// after flushing the checkpoint.
const (
	exitOK     = 0
	exitUsage  = 1
	exitFailed = 2
	exitSignal = 130
)

func main() { os.Exit(run()) }

func run() int {
	var (
		chipName   = flag.String("chip", "C", "CPU model: A, B, C")
		offset     = flag.Int("offset", 97, "undervolt in mV: 70 or 97")
		instrStr   = flag.String("instr", "3e8", "instructions per run")
		seed       = flag.Uint64("seed", 1, "base seed for deterministic per-point seed derivation")
		top        = flag.Int("top", 10, "how many settings to print (>= 1)")
		workers    = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulation workers")
		batch      = flag.Bool("batch", true, "share trace artifacts across points and co-step run/base machines; -batch=false forces fully independent points (identical output, slower)")
		rampMemo   = flag.Bool("rampmemo", true, "memoize mid-ramp integration (pair-keyed segment memo + exponent-specialized Pow kernel); -rampmemo=false takes the reference path (identical output, slower)")
		cacheDir   = flag.String("cache", "", "directory for the on-disk result cache (reused across runs)")
		retries    = flag.Int("retries", 0, "per-job retry budget for transient failures (same derived seed on every attempt)")
		onError    = flag.String("on-error", "fail", "failure policy: 'fail' stops at the first failed job, 'continue' finishes the sweep and reports failures")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job watchdog timeout (0 disables)")
		resume     = flag.Bool("resume", false, "resume an interrupted sweep from the checkpoint journal (requires -cache)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file (flushed on exit, including SIGINT)")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	// ContinueOnError so a flag typo follows the same usage exit code as
	// our own validation, instead of the flag package's hardwired 2.
	flag.CommandLine.Init("suitsweep", flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		return exitUsage
	}

	chip, err := chipByName(*chipName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	if *top < 1 {
		fmt.Fprintf(os.Stderr, "bad -top %d: need at least one setting to print\n", *top)
		return exitUsage
	}
	totalF, err := strconv.ParseFloat(*instrStr, 64)
	if err != nil || totalF < 1e6 {
		fmt.Fprintf(os.Stderr, "bad -instr %q\n", *instrStr)
		return exitUsage
	}
	instr := uint64(totalF)
	var policy engine.FailurePolicy
	switch *onError {
	case "fail":
		policy = engine.FailFast
	case "continue":
		policy = engine.Collect
	default:
		fmt.Fprintf(os.Stderr, "bad -on-error %q: want 'fail' or 'continue'\n", *onError)
		return exitUsage
	}
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -cache: the checkpoint journal lives next to the result cache")
		return exitUsage
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "suitsweep: profile flush:", err)
		}
	}()

	// SIGINT cancels the run context: dispatch stops, in-flight jobs
	// finish and are checkpointed, and we report how to resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	core.SetRunContext(ctx)
	core.SetBatchedExecution(*batch)
	core.SetRampMemo(*rampMemo)

	var cp *engine.Checkpoint
	if *cacheDir != "" {
		config := fmt.Sprintf("suitsweep chip=%s offset=%d instr=%d seed=%d", chip.Name, *offset, instr, *seed)
		cp, err = engine.OpenCheckpoint(filepath.Join(*cacheDir, "suitsweep.journal"), config, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		defer cp.Close()
	}

	core.SetEngineOptions(engine.Options{
		Workers:      *workers,
		BaseSeed:     *seed,
		CacheDir:     *cacheDir,
		Progress:     os.Stderr,
		Label:        "suitsweep",
		Retries:      *retries,
		RetryBackoff: 100 * time.Millisecond,
		Policy:       policy,
		JobTimeout:   *jobTimeout,
		Checkpoint:   cp,
	})

	grid := sweepGrid(chip)
	benches, err := sweepBenches()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}
	fmt.Printf("sweeping %d parameter settings × %d workloads on %s at −%d mV...\n",
		len(grid), len(benches), chip.Name, *offset)

	results, failed, err := sweep(chip, grid, benches, *offset == 97, instr)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "suitsweep: interrupted — completed jobs are checkpointed; re-run with -resume to continue\n")
			fmt.Fprintf(os.Stderr, "suitsweep: partial stats: %s\n", core.EngineStats())
			return exitSignal
		}
		fmt.Fprintln(os.Stderr, err)
		return exitUsage
	}

	if len(results) > 0 {
		n := *top
		if n > len(results) {
			n = len(results)
		}
		t := report.NewTable(fmt.Sprintf("Top %d parameter settings (mean efficiency over %d workloads)", n, len(benches)),
			"p_dl", "p_ts", "p_ec", "p_df", "efficiency")
		for _, r := range results[:n] {
			t.AddRow(r.p.Deadline.String(), r.p.TimeSpan.String(),
				fmt.Sprintf("%d", r.p.MaxExceptions), fmt.Sprintf("%.0f", r.p.DeadlineFactor),
				report.Pct(r.eff))
		}
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return exitUsage
		}
		spread := results[0].eff - results[len(results)-1].eff
		fmt.Printf("\nbest-to-worst spread: %.2f points — the paper notes workloads tolerate a wide range (§6.4)\n", spread*100)
		fmt.Printf("Table 7 reference: 𝒜&𝒞 30 µs/450 µs/3/14; ℬ 700 µs/14 ms/4/9\n")
	}
	fmt.Fprintf(os.Stderr, "suitsweep: %s\n", core.EngineStats())
	rm := cpu.RampMemoStatsNow()
	fmt.Fprintf(os.Stderr, "suitsweep: rampmemo pair_hits=%d pair_misses=%d pair_evictions=%d pow_hits=%d pow_misses=%d pow_evictions=%d\n",
		rm.PairHits, rm.PairMisses, rm.PairEvictions, rm.PowHits, rm.PowMisses, rm.PowEvictions)
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "suitsweep: %d scenarios failed; their grid points were dropped from the ranking:\n", len(failed))
		for _, k := range failed {
			fmt.Fprintf(os.Stderr, "  failed: %s\n", k)
		}
		return exitFailed
	}
	return exitOK
}
