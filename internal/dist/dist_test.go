package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"suit/internal/core"
	"suit/internal/units"
)

// testScenario builds a registry-resolvable scenario; i varies the
// fingerprint.
func testScenario(t *testing.T, i int) core.Scenario {
	t.Helper()
	chip, err := core.ChipByName("A")
	if err != nil {
		t.Fatal(err)
	}
	benches, err := core.BenchesByName([]string{core.SweepBenchNames[0]})
	if err != nil {
		t.Fatal(err)
	}
	params := core.SweepGrid(chip)[0] // a runnable, validated parameter set
	return core.Scenario{
		Chip:         chip,
		Bench:        benches[0],
		Kind:         core.KindFV,
		SpendAging:   true,
		Instructions: uint64(20_000 + i),
		Seed:         uint64(i + 1),
		Params:       &params,
	}
}

// TestScenarioWireRoundTrip: encode → JSON → decode must reproduce the
// identical fingerprint, across chips, co-benches and sweep params.
func TestScenarioWireRoundTrip(t *testing.T) {
	var scenarios []core.Scenario
	for _, letter := range core.ChipLetters() {
		chip, err := core.ChipByName(letter)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range core.SweepGrid(chip)[:2] {
			p := p
			benches, err := core.BenchesByName(core.SweepBenchNames[:2])
			if err != nil {
				t.Fatal(err)
			}
			scenarios = append(scenarios, core.Scenario{
				Chip: chip, Bench: benches[0], CoBenches: benches[1:],
				Kind: core.KindFV, Cores: 2, SpendAging: true,
				Instructions: 5000, Seed: 42, Params: &p,
				RecordTimeline: true, SampleEvery: units.Microseconds(50),
			})
		}
	}
	for _, sc := range scenarios {
		w, err := EncodeScenario(sc)
		if err != nil {
			t.Fatalf("encode %s: %v", sc.Fingerprint(), err)
		}
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var back ScenarioWire
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != sc.Fingerprint() {
			t.Errorf("fingerprint drifted over the wire:\n got %s\nwant %s", got.Fingerprint(), sc.Fingerprint())
		}
	}
}

// TestEncodeScenarioRejectsForeignChip: a chip outside the registry
// cannot travel and must be refused (the caller runs it locally).
func TestEncodeScenarioRejectsForeignChip(t *testing.T) {
	sc := testScenario(t, 0)
	sc.Chip.Name = "Bespoke FPGA"
	if _, err := EncodeScenario(sc); err == nil {
		t.Fatal("EncodeScenario accepted a chip that is not in the registry")
	}
}

// resultFor builds a valid ResultMsg for a unit. The outcome embeds a
// registry scenario because Benchmark's unmarshal validates itself — an
// outcome with no benchmark would be rejected as undecodable.
func resultFor(t *testing.T, fp string, marker int) ResultMsg {
	t.Helper()
	raw, err := json.Marshal(core.Outcome{Scenario: testScenario(t, 0), Efficiency: float64(marker)})
	if err != nil {
		t.Fatal(err)
	}
	return ResultMsg{Fingerprint: fp, Outcome: raw, Digest: ResultDigest(fp, raw)}
}

// startExecute launches Execute in the background and returns a channel
// with its verdict.
type execVerdict struct {
	out     core.Outcome
	handled bool
	err     error
}

func startExecute(d *Dispatcher, sc core.Scenario) <-chan execVerdict {
	ch := make(chan execVerdict, 1)
	go func() {
		out, handled, err := d.Execute(context.Background(), sc, sc.Fingerprint(), 99)
		ch <- execVerdict{out, handled, err}
	}()
	return ch
}

func waitVerdict(t *testing.T, ch <-chan execVerdict) execVerdict {
	t.Helper()
	select {
	case v := <-ch:
		return v
	case <-time.After(10 * time.Second):
		t.Fatal("Execute did not return")
		return execVerdict{}
	}
}

// claimSoon polls Claim until a grant appears (reassigned units carry a
// notBefore backoff, so an immediate claim can legitimately miss).
func claimSoon(t *testing.T, d *Dispatcher, worker string) Grant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if g, ok := d.Claim(worker); ok {
			return g
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no grant appeared")
	return Grant{}
}

func newTestDispatcher(t *testing.T, cfg Config) *Dispatcher {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	d := NewDispatcher(cfg)
	t.Cleanup(d.Close)
	return d
}

// TestDispatcherHappyPath: offer → claim → result → Execute returns the
// verified outcome as a handled remote execution.
func TestDispatcherHappyPath(t *testing.T) {
	d := newTestDispatcher(t, Config{})
	d.Claim("w1") // registers w1 as live so Execute offers remotely
	sc := testScenario(t, 1)
	vch := startExecute(d, sc)

	g := claimSoon(t, d, "w1")
	if g.Unit.Fingerprint != sc.Fingerprint() || g.Unit.Seed != 99 {
		t.Fatalf("grant unit = %q seed %d, want %q seed 99", g.Unit.Fingerprint, g.Unit.Seed, sc.Fingerprint())
	}
	status, err := d.Result(g.LeaseID, resultFor(t, g.Unit.Fingerprint, 7))
	if err != nil || status != "accepted" {
		t.Fatalf("Result = %q, %v; want accepted", status, err)
	}
	v := waitVerdict(t, vch)
	if v.err != nil || !v.handled || v.out.Efficiency != 7 {
		t.Fatalf("Execute = (%v, handled=%v, %v), want the remote outcome", v.out.Efficiency, v.handled, v.err)
	}
	st := d.Stats()
	if st.Offered != 1 || st.Completed != 1 || st.Leases != 1 {
		t.Errorf("stats = %+v, want 1 offered/completed/lease", st)
	}
}

// TestDispatcherNoWorkersDeclines: with no live worker Execute must
// decline immediately — the graceful-degradation contract.
func TestDispatcherNoWorkersDeclines(t *testing.T) {
	d := newTestDispatcher(t, Config{})
	sc := testScenario(t, 2)
	out, handled, err := d.Execute(context.Background(), sc, sc.Fingerprint(), 1)
	if handled || err != nil {
		t.Fatalf("Execute = (%v, handled=%v, %v), want an immediate decline", out, handled, err)
	}
	if st := d.Stats(); st.LocalFallbacks != 1 {
		t.Errorf("LocalFallbacks = %d, want 1", st.LocalFallbacks)
	}
}

// TestLeaseExpiryReassigns: a claimed unit whose worker goes silent is
// reassigned after TTL, and the second lease can complete it.
func TestLeaseExpiryReassigns(t *testing.T) {
	d := newTestDispatcher(t, Config{LeaseTTL: 40 * time.Millisecond, QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1")
	sc := testScenario(t, 3)
	vch := startExecute(d, sc)

	g1 := claimSoon(t, d, "w1")
	// w1 crashes: no heartbeat, no result. The janitor expires the lease.
	g2 := claimSoon(t, d, "w2")
	if g2.Unit.Fingerprint != g1.Unit.Fingerprint {
		t.Fatalf("reassigned unit %q != original %q", g2.Unit.Fingerprint, g1.Unit.Fingerprint)
	}
	if g2.LeaseID == g1.LeaseID {
		t.Fatal("reassignment reused the lease ID")
	}
	if status, err := d.Result(g2.LeaseID, resultFor(t, g2.Unit.Fingerprint, 5)); err != nil || status != "accepted" {
		t.Fatalf("Result on the second lease = %q, %v", status, err)
	}
	if v := waitVerdict(t, vch); v.err != nil || !v.handled || v.out.Efficiency != 5 {
		t.Fatalf("Execute verdict %+v, want the reassigned outcome", v)
	}
	st := d.Stats()
	if st.Expired != 1 || st.Reassigned != 1 {
		t.Errorf("Expired=%d Reassigned=%d, want 1/1", st.Expired, st.Reassigned)
	}
	// A late result from the crashed worker's lease is a verified
	// duplicate, not an error.
	if status, err := d.Result(g1.LeaseID, resultFor(t, g1.Unit.Fingerprint, 5)); err != nil || status != "duplicate" {
		t.Fatalf("late duplicate = %q, %v; want duplicate", status, err)
	}
	// ...but a *different* result for the same fingerprint is a
	// determinism violation and must be rejected.
	if _, err := d.Result(g1.LeaseID, resultFor(t, g1.Unit.Fingerprint, 6)); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting duplicate error = %v, want ErrConflict", err)
	}
}

// TestHeartbeatKeepsLeaseAlive: heartbeats inside the TTL prevent
// expiry even across several TTL windows.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	d := newTestDispatcher(t, Config{LeaseTTL: 50 * time.Millisecond})
	d.Claim("w1")
	sc := testScenario(t, 4)
	vch := startExecute(d, sc)
	g := claimSoon(t, d, "w1")
	for i := 0; i < 8; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, ok := d.Heartbeat(g.LeaseID); !ok {
			t.Fatalf("heartbeat %d reported the lease gone", i)
		}
	}
	if status, err := d.Result(g.LeaseID, resultFor(t, g.Unit.Fingerprint, 1)); err != nil || status != "accepted" {
		t.Fatalf("Result after heartbeats = %q, %v", status, err)
	}
	waitVerdict(t, vch)
	if st := d.Stats(); st.Expired != 0 {
		t.Errorf("lease expired despite heartbeats (Expired=%d)", st.Expired)
	}
}

// TestBadDigestReassigns: a torn body fails the lease and the unit is
// retried elsewhere.
func TestBadDigestReassigns(t *testing.T) {
	d := newTestDispatcher(t, Config{QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1")
	sc := testScenario(t, 5)
	vch := startExecute(d, sc)
	g1 := claimSoon(t, d, "w1")
	msg := resultFor(t, g1.Unit.Fingerprint, 9)
	msg.Digest = "feedfacefeedface"
	if _, err := d.Result(g1.LeaseID, msg); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("bad digest error = %v, want ErrBadDigest", err)
	}
	g2 := claimSoon(t, d, "w2")
	if status, err := d.Result(g2.LeaseID, resultFor(t, g2.Unit.Fingerprint, 9)); err != nil || status != "accepted" {
		t.Fatalf("retry Result = %q, %v", status, err)
	}
	if v := waitVerdict(t, vch); !v.handled || v.err != nil {
		t.Fatalf("verdict %+v, want handled success", v)
	}
	if st := d.Stats(); st.BadDigests != 1 {
		t.Errorf("BadDigests = %d, want 1", st.BadDigests)
	}
}

// TestErrorResultsExhaustToLocalFallback: when every lease fails, the
// unit exhausts its remote budget and Execute declines so the engine
// runs it locally — remote trouble never fails a sweep.
func TestErrorResultsExhaustToLocalFallback(t *testing.T) {
	d := newTestDispatcher(t, Config{RemoteAttempts: 2, QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1")
	sc := testScenario(t, 6)
	vch := startExecute(d, sc)
	for i := 0; i < 2; i++ {
		g := claimSoon(t, d, "w1")
		status, err := d.Result(g.LeaseID, ResultMsg{Fingerprint: g.Unit.Fingerprint, Error: "simulated failure"})
		if err != nil || status != "retrying" {
			t.Fatalf("error result %d = %q, %v; want retrying", i, status, err)
		}
	}
	v := waitVerdict(t, vch)
	if v.handled || v.err != nil {
		t.Fatalf("verdict %+v, want a decline to local execution", v)
	}
	st := d.Stats()
	if st.Exhausted != 1 || st.ErrorResults != 2 || st.LocalFallbacks != 1 {
		t.Errorf("stats %+v, want Exhausted=1 ErrorResults=2 LocalFallbacks=1", st)
	}
}

// TestRemoteOnlySurfacesExhaustion: under RemoteOnly the same failure
// is a real error, not a silent fallback.
func TestRemoteOnlySurfacesExhaustion(t *testing.T) {
	d := newTestDispatcher(t, Config{RemoteAttempts: 1, RemoteOnly: true, QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1")
	sc := testScenario(t, 7)
	vch := startExecute(d, sc)
	g := claimSoon(t, d, "w1")
	if _, err := d.Result(g.LeaseID, ResultMsg{Fingerprint: g.Unit.Fingerprint, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	v := waitVerdict(t, vch)
	if !v.handled || v.err == nil || !errors.Is(v.err, errExhausted) {
		t.Fatalf("verdict %+v, want a handled exhaustion error", v)
	}
}

// TestWorkerQuarantine: consecutive lease failures quarantine the
// worker; its claims are refused until the window passes.
func TestWorkerQuarantine(t *testing.T) {
	d := newTestDispatcher(t, Config{QuarantineAfter: 2, QuarantineFor: time.Hour, TripAfter: 100, RemoteAttempts: 10})
	d.Claim("bad")
	sc := testScenario(t, 8)
	startExecute(d, sc)
	for i := 0; i < 2; i++ {
		g := claimSoon(t, d, "bad")
		if _, err := d.Result(g.LeaseID, ResultMsg{Fingerprint: g.Unit.Fingerprint, Error: "flaky"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := d.Claim("bad"); ok {
		t.Fatal("quarantined worker was granted a lease")
	}
	st := d.Stats()
	if st.Quarantines != 1 || st.QuarantineRefusals == 0 || st.QuarantinedWorkers != 1 {
		t.Errorf("stats %+v, want a recorded quarantine and refusal", st)
	}
	// A healthy worker still gets the unit.
	g := claimSoon(t, d, "good")
	if status, err := d.Result(g.LeaseID, resultFor(t, g.Unit.Fingerprint, 2)); err != nil || status != "accepted" {
		t.Fatalf("healthy worker Result = %q, %v", status, err)
	}
}

// TestTripBreaker: enough consecutive remote failures trip the
// dispatcher; new units decline straight to local until the window
// passes, then remote eligibility returns.
func TestTripBreaker(t *testing.T) {
	d := newTestDispatcher(t, Config{TripAfter: 2, TripFor: 60 * time.Millisecond, QuarantineAfter: 100, RemoteAttempts: 10})
	d.Claim("w1")
	sc := testScenario(t, 9)
	vch := startExecute(d, sc)
	for i := 0; i < 2; i++ {
		g := claimSoon(t, d, "w1")
		if _, err := d.Result(g.LeaseID, ResultMsg{Fingerprint: g.Unit.Fingerprint, Error: "outage"}); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Tripped() {
		t.Fatal("dispatcher did not trip after TripAfter consecutive failures")
	}
	sc2 := testScenario(t, 10)
	if _, handled, _ := d.Execute(context.Background(), sc2, sc2.Fingerprint(), 1); handled {
		t.Fatal("tripped dispatcher accepted a new unit")
	}
	time.Sleep(80 * time.Millisecond)
	if d.Tripped() {
		t.Fatal("trip window did not clear")
	}
	// The original unit is still in flight; finish it.
	g := claimSoon(t, d, "w1")
	if _, err := d.Result(g.LeaseID, resultFor(t, g.Unit.Fingerprint, 3)); err != nil {
		t.Fatal(err)
	}
	waitVerdict(t, vch)
}

// TestExecuteCancellation: a cancelled Execute abandons its unit — the
// queue forgets it and a late claim finds nothing.
func TestExecuteCancellation(t *testing.T) {
	d := newTestDispatcher(t, Config{})
	d.Claim("w1")
	sc := testScenario(t, 11)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := d.Execute(ctx, sc, sc.Fingerprint(), 1)
		done <- err
	}()
	// Wait for the unit to be queued, then cancel before any claim.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PendingUnits == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute error = %v, want context.Canceled", err)
	}
	if _, ok := d.Claim("w1"); ok {
		t.Fatal("abandoned unit was still claimable")
	}
}

// TestNoLiveWorkersAbandonsToLocal is the whole-fleet-crash case: the
// only worker claims a unit and dies. The lease expires and the unit is
// requeued, but nothing will ever claim it again — Execute must notice
// the silent fleet and hand the unit back to local execution instead of
// waiting forever.
func TestNoLiveWorkersAbandonsToLocal(t *testing.T) {
	d := newTestDispatcher(t, Config{LeaseTTL: 30 * time.Millisecond, RemoteAttempts: 100, QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1")
	sc := testScenario(t, 13)
	vch := startExecute(d, sc)
	claimSoon(t, d, "w1")
	// w1 crashes: no heartbeat, no result, no further polls. The lease
	// expires and requeues the unit, then liveness lapses fleet-wide.
	v := waitVerdict(t, vch)
	if v.handled || v.err != nil {
		t.Fatalf("verdict %+v, want a decline to local execution", v)
	}
	st := d.Stats()
	if st.NoWorkerAbandons != 1 || st.LocalFallbacks != 1 {
		t.Errorf("NoWorkerAbandons=%d LocalFallbacks=%d, want 1/1", st.NoWorkerAbandons, st.LocalFallbacks)
	}
	if st.Expired != 1 {
		t.Errorf("Expired=%d, want the crashed worker's lease expired", st.Expired)
	}
	// The abandoned unit must be gone, not claimable by a late worker.
	if _, ok := d.Claim("late"); ok {
		t.Fatal("abandoned unit was still claimable")
	}
}

// TestNoLiveWorkersAbandonsQueuedUnit: same fleet-crash detection for a
// unit that was queued but never claimed — the worker registered, the
// offer went remote, and then every worker vanished before claiming.
func TestNoLiveWorkersAbandonsQueuedUnit(t *testing.T) {
	d := newTestDispatcher(t, Config{LeaseTTL: 30 * time.Millisecond, RemoteAttempts: 100, QuarantineAfter: 100, TripAfter: 100})
	d.Claim("w1") // registers w1 as live; w1 never polls again
	sc := testScenario(t, 14)
	v := waitVerdict(t, startExecute(d, sc))
	if v.handled || v.err != nil {
		t.Fatalf("verdict %+v, want a decline to local execution", v)
	}
	if st := d.Stats(); st.NoWorkerAbandons != 1 {
		t.Errorf("NoWorkerAbandons=%d, want 1", st.NoWorkerAbandons)
	}
}

// TestStaleWorkersPruned: the janitor forgets workers silent far past
// the liveness window (suitworker IDs embed the PID, so restart churn
// would otherwise grow the map forever) — but never a worker still
// serving out a quarantine.
func TestStaleWorkersPruned(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	cfg := Config{nowFn: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}}
	d := newTestDispatcher(t, cfg)
	advance := func(by time.Duration) {
		mu.Lock()
		now = now.Add(by)
		mu.Unlock()
	}

	d.Claim("old")
	d.mu.Lock()
	d.workers["quarantined"] = &workerState{lastSeen: now, quarantinedUntil: now.Add(time.Hour)}
	d.mu.Unlock()

	// Far past the forget horizon, but inside the quarantine window.
	advance(workerForgetAfter*d.cfg.LiveWindow + time.Second)
	d.Claim("fresh")
	d.expireLeases()
	d.mu.Lock()
	_, hasOld := d.workers["old"]
	_, hasQuarantined := d.workers["quarantined"]
	_, hasFresh := d.workers["fresh"]
	d.mu.Unlock()
	if hasOld || !hasQuarantined || !hasFresh {
		t.Fatalf("after prune: old=%v quarantined=%v fresh=%v, want false/true/true", hasOld, hasQuarantined, hasFresh)
	}

	// Once the quarantine has passed and silence continues, it goes too.
	advance(time.Hour + workerForgetAfter*d.cfg.LiveWindow)
	d.expireLeases()
	d.mu.Lock()
	_, hasQuarantined = d.workers["quarantined"]
	d.mu.Unlock()
	if hasQuarantined {
		t.Fatal("quarantine-expired stale worker survived the prune")
	}
}

// TestExpiredLeaseOrderFollowsSeq: reassignment order is the numeric
// creation sequence, not the formatted lease ID — beyond 8 digits the
// zero padding overflows and string order diverges from creation order.
func TestExpiredLeaseOrderFollowsSeq(t *testing.T) {
	d := newTestDispatcher(t, Config{RemoteAttempts: 10, QuarantineAfter: 100, TripAfter: 100})
	past := time.Unix(1_700_000_000, 0) // long before any real now()
	mk := func(key string, seq uint64) {
		u := &unit{key: key, attempts: 1, done: make(chan struct{})}
		id := fmt.Sprintf("l%08d-%s", seq, key)
		d.units[key] = u
		d.leases[id] = &lease{id: id, seq: seq, u: u, worker: "w", deadline: past}
	}
	d.mu.Lock()
	mk("second", 100_000_000) // "l100000000-…" sorts before "l99999999-…"
	mk("first", 99_999_999)
	d.mu.Unlock()
	d.expireLeases()
	d.mu.Lock()
	var order []string
	for _, u := range d.pending {
		order = append(order, u.key)
	}
	d.mu.Unlock()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("reassignment order = %v, want [first second] (creation-sequence order)", order)
	}
}

// TestCloseFailsQueuedUnits: Close unblocks every waiting Execute with
// a decline (local fallback) rather than hanging the daemon's drain.
func TestCloseFailsQueuedUnits(t *testing.T) {
	d := NewDispatcher(Config{})
	d.Claim("w1")
	sc := testScenario(t, 12)
	vch := startExecute(d, sc)
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().PendingUnits == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	d.Close()
	v := waitVerdict(t, vch)
	if v.handled || v.err != nil {
		t.Fatalf("verdict after Close = %+v, want a clean decline", v)
	}
}
