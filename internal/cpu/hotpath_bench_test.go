package cpu

import (
	"testing"

	"suit/internal/trace"
	"suit/internal/units"
)

// hotPathTrace builds a trace with faultable events every gap
// instructions, cycling through the faultable set.
func hotPathTrace(total, gap uint64) *trace.Trace {
	tr := &trace.Trace{Name: "hot", Total: total, IPC: 2}
	for idx := gap; idx < total; idx += gap {
		tr.Events = append(tr.Events, trace.Event{Index: idx, Op: benchOp()})
	}
	return tr
}

// BenchmarkMachineHotPath measures the steady-state event loop: the
// machine is built and warmed once, then every iteration replays the
// whole run via Reset. The steady state must be allocation-free — the
// CI bench job (cmd/suitbench) fails when allocs/op is nonzero.
func BenchmarkMachineHotPath(b *testing.B) {
	run := func(b *testing.B, cfg Config, s Strategy) {
		b.Helper()
		m, err := New(cfg, s)
		if err != nil {
			b.Fatal(err)
		}
		// The warm-up run grows the exception ring, event queue and
		// scheduler buffers to steady-state capacity outside the timer,
		// so even -benchtime=1x observes the zero-allocation regime.
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		m.Reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Run(); err != nil {
				b.Fatal(err)
			}
			m.Reset()
		}
	}
	b.Run("dense-trap", func(b *testing.B) {
		run(b, testConfig(hotPathTrace(2_000_000, 200)), fvLite{deadline: units.Microseconds(30)})
	})
	b.Run("sparse-trap", func(b *testing.B) {
		run(b, testConfig(hotPathTrace(20_000_000, 500_000)), fvLite{deadline: units.Microseconds(30)})
	})
	b.Run("multi-core", func(b *testing.B) {
		run(b, testConfig(
			hotPathTrace(2_000_000, 400),
			hotPathTrace(2_000_000, 700),
			hotPathTrace(2_000_000, 1100),
			hotPathTrace(2_000_000, 1700),
		), fvLite{deadline: units.Microseconds(30)})
	})
}
