package panicpath_test

import (
	"testing"

	"suit/internal/analysis/analysistest"
	"suit/internal/analysis/panicpath"
)

func TestPanicpath(t *testing.T) {
	analysistest.Run(t, "testdata", panicpath.Analyzer,
		"suit/internal/trace", "suit/cmd/tool", "suit/internal/cpu")
}
