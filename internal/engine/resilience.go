package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// PanicError wraps a panic recovered from a job's run function: the
// sweep survives, the job is retried or reported, and the panic value
// plus stack travel with the failure instead of crashing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", e.Value, e.Stack)
}

// TimeoutError reports that a job attempt exceeded Options.JobTimeout
// and was killed by the watchdog.
type TimeoutError struct {
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("job exceeded the %s watchdog timeout", e.Timeout)
}

// JobFailure is one job that exhausted its retries, identified by its
// canonical spec fingerprint.
type JobFailure struct {
	Key      string // spec fingerprint
	Index    int    // first spec index carrying this fingerprint
	Attempts int    // attempts made (1 + retries)
	Err      error  // last attempt's error
}

// RunError aggregates every failed job of a Collect-policy sweep. The
// successful jobs' results are returned alongside it; Failures is
// sorted by spec index so the error text is deterministic.
type RunError struct {
	Failures []JobFailure
	Jobs     int // unique jobs in the batch
}

func (e *RunError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d of %d jobs failed", len(e.Failures), e.Jobs)
	for _, f := range e.Failures {
		short := f.Err
		var pe *PanicError
		if errors.As(f.Err, &pe) {
			// The stack is available via Failures; keep the summary line short.
			fmt.Fprintf(&b, "\n  job %d [%s] after %d attempts: job panicked: %v", f.Index+1, f.Key, f.Attempts, pe.Value)
			continue
		}
		fmt.Fprintf(&b, "\n  job %d [%s] after %d attempts: %v", f.Index+1, f.Key, f.Attempts, short)
	}
	return b.String()
}

// Keys lists the failed fingerprints in spec order.
func (e *RunError) Keys() []string {
	keys := make([]string, len(e.Failures))
	for i, f := range e.Failures {
		keys[i] = f.Key
	}
	return keys
}

// RetryDelay is the pause before retry attempt (attempt counts from 0:
// the delay between the first failure and the second attempt). The
// delay doubles per attempt up to 32× base and carries a deterministic
// jitter derived from the job fingerprint — never from the global rand
// source — so two processes sweeping the same grid do not retry in
// lockstep, yet a given (fingerprint, attempt) always waits the same
// time. A base <= 0 retries immediately.
func RetryDelay(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	d := base << uint(shift)
	jitter := time.Duration(DeriveSeed(uint64(attempt)+1, key) % uint64(d/2+1))
	return d + jitter
}

// executeJob runs one job to completion: up to 1+Retries attempts, each
// panic-contained and watchdog-bounded, every attempt reusing the same
// derived seed so retries cannot change results. It returns the number
// of attempts made alongside the result or final error.
//
// When a remote hook is installed the job is offered there first; a
// handled job returns without local work, a declined one (no live
// workers, tripped dispatcher, exhausted remote attempts) falls through
// to the local attempt loop — the graceful-degradation contract that
// keeps a daemon with zero workers exactly as capable as before.
func (e *Engine[S, R]) executeJob(ctx context.Context, j *job[S]) (R, int, error) {
	seed := DeriveSeed(e.opts.BaseSeed, j.key)
	if e.remote != nil {
		if r, handled, err := e.remote(ctx, j.spec, j.key, seed); handled {
			if err == nil {
				e.mu.Lock()
				e.stats.Remote++
				e.mu.Unlock()
			}
			return r, 1, err
		}
	}
	var r R
	var err error
	for attempt := 0; ; attempt++ {
		r, err = e.attempt(ctx, j.spec, seed)
		if err == nil || ctx.Err() != nil {
			return r, attempt + 1, err
		}
		if attempt >= e.opts.Retries {
			return r, attempt + 1, err
		}
		e.countFailure(err) // attribute the retried attempt's cause
		e.mu.Lock()
		e.stats.Retried++
		e.mu.Unlock()
		if !sleepCtx(ctx, RetryDelay(e.opts.RetryBackoff, j.key, attempt)) {
			return r, attempt + 1, ctx.Err()
		}
	}
}

// attempt runs the job function once with panic containment and, when
// JobTimeout is set, under a watchdog: the attempt gets a cancellable
// child context, and if the timer fires first the attempt's context is
// cancelled and a *TimeoutError returned. A run function that honors
// its context exits promptly (zero goroutines linger); one that ignores
// it is abandoned — its goroutine finishes in the background — but the
// worker pool moves on either way, so a hung simulation can no longer
// stall the sweep.
func (e *Engine[S, R]) attempt(ctx context.Context, spec S, seed uint64) (r R, err error) {
	if e.opts.JobTimeout <= 0 {
		defer func() {
			if p := recover(); p != nil {
				err = &PanicError{Value: p, Stack: debug.Stack()}
			}
		}()
		return e.run(ctx, spec, seed)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		r   R
		err error
	}
	ch := make(chan outcome, 1) // buffered: the attempt goroutine can always exit
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				o = outcome{err: &PanicError{Value: p, Stack: debug.Stack()}}
			}
			ch <- o
		}()
		o.r, o.err = e.run(actx, spec, seed)
	}()

	wd := time.NewTimer(e.opts.JobTimeout) //lint:allow determinism the watchdog bounds a hung job's wall time; it only ever converts a non-result into a TimeoutError
	defer wd.Stop()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-ctx.Done():
		cancel()
		return r, ctx.Err()
	case <-wd.C:
		cancel() // a context-honoring run returns promptly and the goroutine exits
		return r, &TimeoutError{Timeout: e.opts.JobTimeout}
	}
}

// sleepCtx pauses for d, returning false if ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d) //lint:allow determinism the backoff timer paces retries; the retried attempt reuses the same derived seed, so timing never reaches results
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
