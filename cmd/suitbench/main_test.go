package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	s, ok := parseBenchLine("BenchmarkMachineHotPath/dense-trap-8 \t 1 \t 2049713 ns/op \t 128 B/op \t 2 allocs/op")
	if !ok {
		t.Fatal("valid bench line rejected")
	}
	if s.Name != "BenchmarkMachineHotPath/dense-trap" {
		t.Errorf("name %q: -8 CPU suffix not trimmed", s.Name)
	}
	if s.MinNsPerOp != 2049713 || s.MaxBytesOp != 128 || s.MaxAllocsOp != 2 {
		t.Errorf("parsed %+v", s)
	}

	for _, line := range []string{
		"ok  \tsuit/internal/cpu\t0.31s",
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 not numbers here",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-result line parsed as a benchmark: %q", line)
		}
	}

	// A benchmark without -benchmem style columns still parses.
	s, ok = parseBenchLine("BenchmarkMachineEventLoop-4   5   304958 ns/op")
	if !ok || s.MinNsPerOp != 304958 || s.MaxAllocsOp != 0 {
		t.Errorf("plain ns/op line: ok=%v %+v", ok, s)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":           "BenchmarkX",
		"BenchmarkX/sub-case-16": "BenchmarkX/sub-case",
		"BenchmarkX/sub-case":    "BenchmarkX/sub-case",
		"BenchmarkX":             "BenchmarkX",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
