package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRemoteHookHandledSkipsLocal: a job the remote tier handles never
// reaches the local run function, and Stats.Remote counts it (still
// inside Ran).
func TestRemoteHookHandledSkipsLocal(t *testing.T) {
	var localRuns atomic.Int64
	eng := New(specKey, func(ctx context.Context, spec testSpec, seed uint64) (int, error) {
		localRuns.Add(1)
		return spec.ID * 2, nil
	}, Options{Workers: 2})
	var remoteRuns atomic.Int64
	eng.SetRemote(func(ctx context.Context, spec testSpec, key string, seed uint64) (int, bool, error) {
		if want := DeriveSeed(0, key); seed != want {
			t.Errorf("remote hook got seed %d, want the derived %d", seed, want)
		}
		remoteRuns.Add(1)
		return spec.ID * 2, true, nil
	})

	specs := []testSpec{{ID: 1}, {ID: 2}, {ID: 3}}
	got, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if got[i] != s.ID*2 {
			t.Errorf("result[%d] = %d, want %d", i, got[i], s.ID*2)
		}
	}
	if localRuns.Load() != 0 {
		t.Errorf("local run function ran %d times, want 0", localRuns.Load())
	}
	st := eng.Stats()
	if st.Remote != 3 || st.Ran != 3 {
		t.Errorf("stats: Remote=%d Ran=%d, want 3/3", st.Remote, st.Ran)
	}
	if remoteRuns.Load() != 3 {
		t.Errorf("remote hook ran %d times, want 3", remoteRuns.Load())
	}
}

// TestRemoteHookDeclinedFallsBackLocal: handled=false must run the job
// locally — the engine with a declining remote tier behaves exactly
// like an engine without one.
func TestRemoteHookDeclinedFallsBackLocal(t *testing.T) {
	var localRuns atomic.Int64
	eng := New(specKey, func(ctx context.Context, spec testSpec, seed uint64) (int, error) {
		localRuns.Add(1)
		return spec.ID + 7, nil
	}, Options{Workers: 2})
	eng.SetRemote(func(ctx context.Context, spec testSpec, key string, seed uint64) (int, bool, error) {
		return 0, false, nil
	})

	got, err := eng.Run(context.Background(), []testSpec{{ID: 4}, {ID: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 11 || got[1] != 12 {
		t.Errorf("results = %v, want [11 12]", got)
	}
	if localRuns.Load() != 2 {
		t.Errorf("local runs = %d, want 2", localRuns.Load())
	}
	if st := eng.Stats(); st.Remote != 0 {
		t.Errorf("Stats.Remote = %d, want 0", st.Remote)
	}
}

// TestRemoteHookErrorFailsJob: handled=true with an error is a job
// failure like any local one — retryable by policy, reported by
// fingerprint.
func TestRemoteHookErrorFailsJob(t *testing.T) {
	eng := New(specKey, func(ctx context.Context, spec testSpec, seed uint64) (int, error) {
		t.Error("local run must not execute for a handled job")
		return 0, nil
	}, Options{Workers: 1, Policy: Collect})
	sentinel := errors.New("remote tier exploded")
	eng.SetRemote(func(ctx context.Context, spec testSpec, key string, seed uint64) (int, bool, error) {
		return 0, true, fmt.Errorf("job %s: %w", key, sentinel)
	})

	_, err := eng.Run(context.Background(), []testSpec{{ID: 1}})
	var re *RunError
	if !errors.As(err, &re) || len(re.Failures) != 1 {
		t.Fatalf("err = %v, want a RunError with 1 failure", err)
	}
	if !errors.Is(re.Failures[0].Err, sentinel) {
		t.Errorf("failure error = %v, want the remote sentinel", re.Failures[0].Err)
	}
	if !strings.Contains(err.Error(), specKey(testSpec{ID: 1})) {
		t.Errorf("error text %q does not name the failed fingerprint", err)
	}
}
