module suit

go 1.22
