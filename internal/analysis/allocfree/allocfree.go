// Package allocfree statically enforces the repo's zero-alloc hot-path
// contract. PR 5 and PR 7 took the sweep engine's steady state to zero
// allocations per simulated instruction; this analyzer keeps it there
// by construction instead of by benchmark vigilance.
//
// Roots are functions annotated with a //suit:hotpath pragma in their
// doc comment. Hotness propagates transitively over the statically
// resolved call graph (direct calls and bound method values); dynamic
// dispatch — interface calls and function-typed values — is treated
// conservatively and does NOT spread hotness, so a Strategy
// implementation is only checked if annotated in its own right.
//
// Inside a hot function every allocation site is a finding:
//
//   - make, new, and append (append may grow the backing array);
//   - map inserts;
//   - slice and map composite literals, and &T{...} whose address
//     escapes the statement;
//   - function literals that capture variables (non-capturing literals
//     compile to static closures and are exempt);
//   - implicit interface conversions at call arguments, assignments and
//     returns, EXCEPT pointer-shaped values (pointers, channels, maps,
//     funcs, unsafe.Pointer, and single-pointer-field structs box
//     without allocating);
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - calls into the fmt package and errors.New, which allocate by
//     contract;
//   - go statements.
//
// Whether a function "may allocate" is also exported as a cross-package
// fact, so a hot function in internal/cpu calling a helper in
// internal/msr is charged at the call site when the helper's own
// package proved it allocates. Standard-library callees carry no facts
// and are assumed allocation-free apart from the explicit denylist.
//
// A finding is silenced the usual way — //lint:allow allocfree <reason>
// — and a suppressed site neither reports nor contributes to the
// function's exported fact, so an explained allocation (a test-only
// log, a once-per-run ring buffer) does not smear every caller.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"suit/internal/analysis"
	"suit/internal/analysis/callgraph"
	"suit/internal/analysis/facts"
)

// HotAnnotation marks a hot-path root when it appears as a //suit:hotpath
// pragma line in a function's doc comment.
const HotAnnotation = "suit:hotpath"

// Allocates is the cross-package fact: the function may allocate on
// some path, and Site is a representative site ("run.go:103: append may
// grow the backing array") for the eventual diagnostic.
type Allocates struct {
	Site string `json:"site"`
}

// AFact marks Allocates as a fact type.
func (*Allocates) AFact() {}

func init() { facts.Register(&Allocates{}) }

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "reports allocation sites reachable from //suit:hotpath roots; " +
		"hotness propagates over static calls and method values, never " +
		"through interface dispatch",
	Run: run,
}

// site is one potential allocation in a function body.
type site struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	// Pass 1: local allocation sites per function, suppressions applied.
	// A site silenced by //lint:allow allocfree is invisible from here
	// on: it is neither reported nor folded into the function's fact.
	sites := make(map[*types.Func][]site, len(g.Nodes))
	for _, n := range g.Nodes {
		sites[n.Func] = scanAllocs(pass, n.Decl)
	}

	// Pass 2: intra-package fixpoint over static call edges. A function
	// allocates if it has a surviving local site or an unallowed static
	// call to an allocating callee — local (summary) or cross-package
	// (imported fact). Interface and function-value edges never
	// contribute; that is the conservative contract.
	summary := make(map[*types.Func]site, len(g.Nodes))
	for _, n := range g.Nodes {
		if s := sites[n.Func]; len(s) > 0 {
			summary[n.Func] = s[0]
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if _, done := summary[n.Func]; done {
				continue
			}
			for _, e := range n.Out {
				cs, ok := calleeAllocates(pass, g, summary, e)
				if !ok || pass.Allowed(e.Pos) {
					continue
				}
				summary[n.Func] = site{
					pos: e.Pos,
					msg: fmt.Sprintf("calls %s which may allocate (%s)", calleeName(e.Callee), cs),
				}
				changed = true
				break
			}
		}
	}

	// Export facts for every allocating package-level function so
	// dependent packages can charge calls into this one.
	for _, n := range g.Nodes {
		if s, ok := summary[n.Func]; ok {
			pass.ExportFact(n.Func, &Allocates{Site: posString(pass.Fset, s.pos) + ": " + s.msg})
		}
	}

	// Pass 3: hotness. Roots are //suit:hotpath-annotated declarations;
	// reachability follows static and method-value edges only.
	var roots []*types.Func
	for _, n := range g.Nodes {
		if hasHotAnnotation(n.Decl.Doc) {
			roots = append(roots, n.Func)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	hot := g.Reachable(roots, nil)

	// Pass 4: report. Local sites of hot functions surface directly; a
	// hot function's call to an allocating callee outside the graph
	// (cross-package, or a bodiless declaration) surfaces at the call
	// site. Local callees of hot functions are themselves hot, so their
	// sites are reported once, where they occur.
	for _, n := range g.Nodes {
		if !hot[n.Func] {
			continue
		}
		for _, s := range sites[n.Func] {
			pass.Reportf(s.pos, "hot path: %s", s.msg)
		}
		for _, e := range n.Out {
			if e.Callee == nil || g.Node(e.Callee) != nil {
				continue
			}
			if e.Kind != callgraph.Static && e.Kind != callgraph.MethodValue {
				continue
			}
			var fact Allocates
			if pass.ImportFact(e.Callee, &fact) {
				pass.Reportf(e.Pos, "hot path: calls %s which may allocate (%s)",
					calleeName(e.Callee), fact.Site)
			}
		}
	}
	return nil
}

// calleeAllocates resolves whether an edge's target may allocate, and
// with what representative site description.
func calleeAllocates(pass *analysis.Pass, g *callgraph.Graph, summary map[*types.Func]site, e callgraph.Edge) (string, bool) {
	if e.Callee == nil || (e.Kind != callgraph.Static && e.Kind != callgraph.MethodValue) {
		return "", false
	}
	if g.Node(e.Callee) != nil {
		s, ok := summary[e.Callee]
		if !ok {
			return "", false
		}
		return posString(pass.Fset, s.pos) + ": " + s.msg, true
	}
	var fact Allocates
	if pass.ImportFact(e.Callee, &fact) {
		return fact.Site, true
	}
	return "", false
}

// calleeName renders a callee for diagnostics: pkg.F or pkg.(T).M.
func calleeName(fn *types.Func) string {
	if fn == nil {
		return "<dynamic>"
	}
	key, ok := facts.FuncKey(fn)
	if !ok {
		return fn.Name()
	}
	pkg := key.Pkg
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + key.Obj
}

// posString renders "file.go:line" with the directory stripped, stable
// across checkouts.
func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// hasHotAnnotation reports whether a doc comment contains the
// //suit:hotpath pragma on a line of its own.
func hasHotAnnotation(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == HotAnnotation {
			return true
		}
	}
	return false
}

// scanAllocs walks one declaration's body and returns its unsuppressed
// allocation sites in source order. Function-literal bodies are charged
// to the enclosing declaration, matching the call graph's attribution.
func scanAllocs(pass *analysis.Pass, decl *ast.FuncDecl) []site {
	info := pass.TypesInfo
	var out []site
	report := func(pos token.Pos, format string, args ...any) {
		if pass.Allowed(pos) {
			return
		}
		out = append(out, site{pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Result types of the enclosing declaration, for return boxing.
	var results *types.Tuple
	if fn, ok := info.Defs[decl.Name].(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			scanCall(pass, x, report)
		case *ast.GoStmt:
			report(x.Go, "go statement allocates a new goroutine")
		case *ast.FuncLit:
			if capturesVariables(info, x) {
				report(x.Pos(), "func literal captures variables and allocates a closure")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates")
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal may escape and allocate")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.TypeOf(x)) {
				report(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			scanAssign(info, x, report)
		case *ast.ValueSpec:
			scanValueSpec(info, x, report)
		case *ast.ReturnStmt:
			scanReturn(info, x, results, report)
		}
		return true
	})
	return out
}

// scanCall classifies one call expression: builtins, conversions, the
// fmt/errors denylist, and interface boxing at arguments.
func scanCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo

	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		scanConversion(info, call, tv.Type, report)
		return
	}

	// Builtins.
	if id, ok := unwrap(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Lparen, "make allocates")
			case "new":
				report(call.Lparen, "new allocates")
			case "append":
				report(call.Lparen, "append may grow the backing array")
			}
			return
		}
	}

	// Denylist: fmt.* and errors.New allocate by contract.
	if fn := staticCallee(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			report(call.Lparen, "fmt.%s allocates", fn.Name())
			return
		case "errors":
			if fn.Name() == "New" {
				report(call.Lparen, "errors.New allocates")
				return
			}
		}
	}

	// Interface boxing at call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				param = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		if param == nil {
			continue
		}
		if boxes(info, param, arg) {
			report(arg.Pos(), "argument boxed into interface %s allocates", param)
		}
	}
}

// scanConversion flags allocating type conversions: string<->[]byte,
// string<->[]rune, and explicit conversion to an interface type.
func scanConversion(info *types.Info, call *ast.CallExpr, target types.Type, report func(token.Pos, string, ...any)) {
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(target) && isByteOrRuneSlice(src):
		report(call.Lparen, "[]byte/[]rune to string conversion allocates")
	case isByteOrRuneSlice(target) && isString(src):
		report(call.Lparen, "string to []byte/[]rune conversion allocates")
	case types.IsInterface(target.Underlying()) && boxes(info, target, call.Args[0]):
		report(call.Lparen, "conversion to interface %s allocates", target)
	}
}

// scanAssign flags map inserts, string +=, and interface boxing on
// plain assignments to interface-typed locations.
func scanAssign(info *types.Info, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	for _, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				report(ix.Lbrack, "map assignment may allocate")
			}
		}
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(info.TypeOf(as.Lhs[0])) {
		report(as.TokPos, "string concatenation allocates")
	}
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			lt := info.TypeOf(lhs)
			if lt == nil || !types.IsInterface(lt.Underlying()) {
				continue
			}
			if boxes(info, lt, as.Rhs[i]) {
				report(as.Rhs[i].Pos(), "assignment boxes value into interface %s", lt)
			}
		}
	}
}

// scanValueSpec flags interface boxing in `var i I = concrete`.
func scanValueSpec(info *types.Info, vs *ast.ValueSpec, report func(token.Pos, string, ...any)) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	t := info.TypeOf(vs.Type)
	if t == nil || !types.IsInterface(t.Underlying()) {
		return
	}
	for _, v := range vs.Values {
		if boxes(info, t, v) {
			report(v.Pos(), "declaration boxes value into interface %s", t)
		}
	}
}

// scanReturn flags interface boxing at return statements.
func scanReturn(info *types.Info, ret *ast.ReturnStmt, results *types.Tuple, report func(token.Pos, string, ...any)) {
	if results == nil || len(ret.Results) != results.Len() {
		return // bare return, or single multi-value call: nothing boxed here
	}
	for i, r := range ret.Results {
		rt := results.At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		if boxes(info, rt, r) {
			report(r.Pos(), "return boxes value into interface %s", rt)
		}
	}
}

// boxes reports whether assigning expr to a location of interface type
// target performs an allocating interface conversion: the expression's
// type is concrete, not pointer-shaped, and not untyped nil.
func boxes(info *types.Info, target types.Type, expr ast.Expr) bool {
	if !types.IsInterface(target.Underlying()) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	st := tv.Type
	if types.IsInterface(st.Underlying()) {
		return false // interface-to-interface copies words, no allocation
	}
	if _, isTP := st.(*types.TypeParam); isTP {
		return false // instantiation-dependent; charged at the instantiation
	}
	return !pointerShaped(st)
}

// pointerShaped reports whether a value of type t boxes into an
// interface without allocating: its runtime representation is a single
// pointer word (pointers, channels, maps, funcs, unsafe.Pointer, and
// structs wrapping exactly one such field).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
}

// staticCallee resolves the called function when it is a plain function
// or method reference; nil for dynamic calls and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := unwrap(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// unwrap strips parentheses and generic instantiation indices.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// capturesVariables reports whether a function literal references a
// variable declared outside itself but inside some function (captured
// state forces a heap-allocated closure; package-level variables do
// not).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: static reference, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
